package audit

import (
	"bytes"
	"errors"
	"strings"
	"testing"
	"time"

	"gpurelay/internal/obs"
)

func testBundle(t *testing.T) *Bundle {
	t.Helper()
	flight := []obs.FlightEvent{
		{Seq: 1, VT: time.Millisecond, Session: "sess-9", Kind: obs.FKResync, Note: "begin"},
		{Seq: 2, VT: 2 * time.Millisecond, Session: "sess-9", Kind: obs.FKResync, Note: "diverged"},
	}
	reg := obs.NewRegistry()
	reg.Add(obs.MFleetSessions, 3)
	q := Entry{Fingerprint: "deadbeefdeadbeef", Reason: ReasonBadRecording, Detail: "short payload", Bytes: 12}
	return CaptureBundle("sess-9", errors.New("metastate fingerprint diverged"),
		2*time.Millisecond, flight, reg.Snapshot(), &q)
}

func TestBundleSealRoundTrip(t *testing.T) {
	b := testBundle(t)
	key := bytes.Repeat([]byte{0x42}, 32)
	signed, err := b.Seal(key)
	if err != nil {
		t.Fatal(err)
	}
	back, err := OpenBundle(signed.Payload, signed.MAC[:], key)
	if err != nil {
		t.Fatal(err)
	}
	if back.Session != "sess-9" || back.Reason != b.Reason || back.VTNS != b.VTNS {
		t.Errorf("round trip: got %+v, want %+v", back, b)
	}
	if len(back.Flight) != 2 || back.Flight[1].Note != "diverged" {
		t.Errorf("flight tail lost: %+v", back.Flight)
	}
	if back.Quarantine == nil || back.Quarantine.Fingerprint != "deadbeefdeadbeef" {
		t.Errorf("quarantine entry lost: %+v", back.Quarantine)
	}
	if back.Fingerprint != "deadbeefdeadbeef" {
		t.Errorf("bundle fingerprint %q, want the quarantine entry's", back.Fingerprint)
	}
	if !strings.Contains(back.Metrics, obs.MFleetSessions) {
		t.Errorf("metrics snapshot missing %s:\n%s", obs.MFleetSessions, back.Metrics)
	}
	if r := back.Render(); !strings.Contains(r, "sess-9") || !strings.Contains(r, "diverged") {
		t.Errorf("Render() missing session or flight tail:\n%s", r)
	}
}

func TestBundleSealTamperEvident(t *testing.T) {
	b := testBundle(t)
	key := bytes.Repeat([]byte{0x42}, 32)
	signed, err := b.Seal(key)
	if err != nil {
		t.Fatal(err)
	}
	tampered := append([]byte(nil), signed.Payload...)
	tampered[len(tampered)/2] ^= 1
	if _, err := OpenBundle(tampered, signed.MAC[:], key); err == nil {
		t.Error("tampered payload verified")
	}
	wrongKey := bytes.Repeat([]byte{0x43}, 32)
	if _, err := OpenBundle(signed.Payload, signed.MAC[:], wrongKey); err == nil {
		t.Error("wrong key verified")
	}
	if _, err := OpenBundle(signed.Payload, signed.MAC[:8], key); err == nil {
		t.Error("truncated MAC accepted")
	}
}

func TestBundleFileRoundTrip(t *testing.T) {
	b := testBundle(t)
	key := bytes.Repeat([]byte{0x07}, 32)
	signed, err := b.Seal(key)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := EncodeBundleFile(&buf, signed, key); err != nil {
		t.Fatal(err)
	}
	payload, mac, fileKey, err := DecodeBundleFile(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(fileKey, key) {
		t.Error("key chunk corrupted")
	}
	back, err := OpenBundle(payload, mac, fileKey)
	if err != nil {
		t.Fatal(err)
	}
	if back.Reason != b.Reason {
		t.Errorf("reason %q, want %q", back.Reason, b.Reason)
	}

	// Corruption cases: wrong magic, truncation, trailing garbage.
	if _, _, _, err := DecodeBundleFile(strings.NewReader("GRTB rest")); err == nil {
		t.Error("wrong magic accepted")
	}
	if _, _, _, err := DecodeBundleFile(bytes.NewReader(buf.Bytes()[:buf.Len()/2])); err == nil {
		t.Error("truncated file accepted")
	}
	withTrailer := append(append([]byte(nil), buf.Bytes()...), "junk"...)
	if _, _, _, err := DecodeBundleFile(bytes.NewReader(withTrailer)); err == nil {
		t.Error("trailing bytes accepted")
	}
}

func TestBundleLogRing(t *testing.T) {
	l := NewBundleLog(2)
	if _, ok := l.Last(); ok {
		t.Error("empty log reported a last bundle")
	}
	for i := 0; i < 3; i++ {
		l.Add(SealedBundle{Bundle: &Bundle{Schema: BundleSchema, Detail: string(rune('a' + i))}})
	}
	if l.Total() != 3 {
		t.Errorf("Total = %d, want 3", l.Total())
	}
	ents := l.Entries()
	if len(ents) != 2 || ents[0].Bundle.Detail != "b" || ents[1].Bundle.Detail != "c" {
		t.Errorf("Entries = %v, want details b,c oldest-first", ents)
	}
	last, ok := l.Last()
	if !ok || last.Bundle.Detail != "c" {
		t.Errorf("Last = %+v ok=%v, want detail c", last, ok)
	}

	var nilLog *BundleLog
	nilLog.Add(SealedBundle{}) // must not panic
	if nilLog.Total() != 0 || nilLog.Entries() != nil {
		t.Error("nil log reported state")
	}
}
