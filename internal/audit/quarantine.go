// Package audit tracks recordings rejected at the ingestion boundary. A
// rejected recording is evidence — of a buggy recorder, a corrupted store,
// or an active attack — so instead of vanishing into an error return it is
// quarantined: fingerprinted, tagged with a stable machine-readable reason,
// and counted, so operators can see rejection pressure in the fleet metrics
// and pull the offending payloads for forensics.
package audit

import (
	"crypto/sha256"
	"encoding/hex"
	"errors"
	"sync"

	"gpurelay/internal/grterr"
	"gpurelay/internal/trace"
)

// Reason tokens, stable across releases: these appear as metric label
// values and in grtreplay's machine-readable rejection reports.
const (
	ReasonBadRecording      = "bad_recording"
	ReasonCheckpointCorrupt = "checkpoint_corrupt"
	ReasonSKUMismatch       = "sku_mismatch"
	ReasonAudit             = "audit"
	ReasonOther             = "other"
)

// Reason maps a rejection error to its stable token. Structural-audit
// failures are distinguished from codec/signature failures even though both
// wrap ErrBadRecording — the former means a well-formed, correctly sealed
// payload that lies about the session it describes, which is the more
// alarming signal.
func Reason(err error) string {
	var ae *trace.AuditError
	switch {
	case err == nil:
		return ""
	case errors.As(err, &ae):
		return ReasonAudit
	case errors.Is(err, grterr.ErrBadRecording):
		return ReasonBadRecording
	case errors.Is(err, grterr.ErrCheckpointCorrupt):
		return ReasonCheckpointCorrupt
	case errors.Is(err, grterr.ErrSKUMismatch):
		return ReasonSKUMismatch
	default:
		return ReasonOther
	}
}

// Fingerprint identifies a rejected payload without retaining it: the first
// 16 hex digits of its SHA-256.
func Fingerprint(payload []byte) string {
	sum := sha256.Sum256(payload)
	return hex.EncodeToString(sum[:8])
}

// Entry is one quarantined rejection.
type Entry struct {
	// Fingerprint identifies the payload (truncated SHA-256).
	Fingerprint string
	// Reason is the stable rejection token (see the Reason* constants).
	Reason string
	// Detail is the rejection error's message.
	Detail string
	// Bytes is the payload size; the payload itself is not retained.
	Bytes int
}

// DefaultCapacity bounds a quarantine's retained entries. The counters keep
// counting past it; only the per-entry detail ring is bounded.
const DefaultCapacity = 128

// Quarantine is a bounded, thread-safe ring of rejection entries. When full
// the oldest entry is dropped — the total rejection count is monotonic and
// survives eviction.
type Quarantine struct {
	mu      sync.Mutex
	entries []Entry
	start   int // ring head
	total   int
	cap     int
}

// New creates a quarantine retaining at most capacity entries
// (DefaultCapacity if <= 0).
func New(capacity int) *Quarantine {
	if capacity <= 0 {
		capacity = DefaultCapacity
	}
	return &Quarantine{cap: capacity}
}

// Add quarantines one rejected payload and returns its entry.
func (q *Quarantine) Add(payload []byte, err error) Entry {
	e := Entry{
		Fingerprint: Fingerprint(payload),
		Reason:      Reason(err),
		Detail:      err.Error(),
		Bytes:       len(payload),
	}
	q.mu.Lock()
	defer q.mu.Unlock()
	q.total++
	if len(q.entries) < q.cap {
		q.entries = append(q.entries, e)
	} else {
		q.entries[q.start] = e
		q.start = (q.start + 1) % q.cap
	}
	return e
}

// Entries returns the retained entries, oldest first.
func (q *Quarantine) Entries() []Entry {
	q.mu.Lock()
	defer q.mu.Unlock()
	out := make([]Entry, 0, len(q.entries))
	for i := 0; i < len(q.entries); i++ {
		out = append(out, q.entries[(q.start+i)%len(q.entries)])
	}
	return out
}

// Contains reports whether a fingerprint is currently retained in the
// ring. The recording cache uses this as its serve-side interlock: a
// quarantined fingerprint must never be served from — or admitted into —
// the content-addressed store while the evidence is still live. Eviction
// from the ring (capacity pressure) releases the hold; the fail-closed
// property callers rely on is "quarantined now → not servable now".
func (q *Quarantine) Contains(fingerprint string) bool {
	q.mu.Lock()
	defer q.mu.Unlock()
	for i := range q.entries {
		if q.entries[i].Fingerprint == fingerprint {
			return true
		}
	}
	return false
}

// Total returns the number of rejections ever quarantined, including
// entries since evicted from the ring.
func (q *Quarantine) Total() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.total
}
