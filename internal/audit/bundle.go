// Diagnostic bundles: the sealed evidence artifact captured automatically on
// a failure path (ingest rejection, resync divergence, checkpoint
// corruption). A bundle packages everything an operator needs to triage the
// failure after the fact — the flight-recorder tail leading up to it, a
// metrics snapshot, and the quarantine entry when one exists — and is sealed
// with HMAC-SHA256 so the evidence itself is tamper-evident, the same
// property recordings and checkpoints already have.
package audit

import (
	"bytes"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"io"
	"strings"
	"sync"
	"time"

	"gpurelay/internal/obs"
	"gpurelay/internal/trace"
)

// BundleSchema identifies the diagnostic-bundle JSON payload version.
const BundleSchema = "grt-diag/1"

// BundleMagic is the on-disk magic of a sealed bundle file ("GRTD"), followed
// by uint32-LE length-prefixed chunks (payload, mac, key) — the same chunk
// layout as recording ("GRTB") and checkpoint ("GRTC") files.
const BundleMagic = "GRTD"

// Bundle is one diagnostic bundle's payload: what failed, when (virtual
// time), and the observability state around the failure.
type Bundle struct {
	Schema string `json:"schema"`
	// Session names the failing session ("" for sessionless failures such
	// as ingest rejections).
	Session string `json:"session,omitempty"`
	// Reason is the stable rejection token (Reason* constants).
	Reason string `json:"reason"`
	// Detail is the failure error's message.
	Detail string `json:"detail"`
	// Fingerprint identifies the offending payload when one exists
	// (truncated SHA-256, matching the quarantine entry).
	Fingerprint string `json:"fingerprint,omitempty"`
	// VTNS is the virtual time of capture, in nanoseconds.
	VTNS int64 `json:"vt_ns"`
	// Flight is the flight-recorder tail leading up to the failure.
	Flight []obs.FlightEvent `json:"flight,omitempty"`
	// Metrics is a Prometheus text exposition of the registry snapshot at
	// capture (text, not structured: the exposition format is the stable
	// contract every other surface already speaks).
	Metrics string `json:"metrics,omitempty"`
	// Quarantine is the matching quarantine entry, when the failure passed
	// through the ingestion boundary.
	Quarantine *Entry `json:"quarantine,omitempty"`
}

// CaptureBundle assembles a diagnostic bundle from the observability state at
// a failure. Any of flight/metrics/quarantine may be nil/empty — a bundle
// captured from an uninstrumented service still records reason and detail.
func CaptureBundle(session string, err error, vt time.Duration,
	flight []obs.FlightEvent, metrics *obs.Snapshot, q *Entry) *Bundle {
	b := &Bundle{
		Schema:  BundleSchema,
		Session: session,
		Reason:  Reason(err),
		Detail:  err.Error(),
		VTNS:    vt.Nanoseconds(),
		Flight:  flight,
	}
	if q != nil {
		qc := *q
		b.Quarantine = &qc
		b.Fingerprint = q.Fingerprint
	}
	if metrics != nil {
		b.Metrics = metrics.Prometheus()
	}
	return b
}

// Seal signs the bundle's canonical JSON encoding under key.
func (b *Bundle) Seal(key []byte) (*trace.Signed, error) {
	payload, err := json.Marshal(b)
	if err != nil {
		return nil, err
	}
	return trace.SignBytes(payload, key)
}

// OpenBundle verifies a sealed bundle and decodes its payload. A bad MAC or
// a payload that is not a BundleSchema document fails.
func OpenBundle(payload, mac, key []byte) (*Bundle, error) {
	if len(mac) != 32 {
		return nil, fmt.Errorf("audit: bundle MAC must be 32 bytes, got %d", len(mac))
	}
	s := &trace.Signed{Payload: payload}
	copy(s.MAC[:], mac)
	verified, err := trace.VerifyBytes(s, key)
	if err != nil {
		return nil, fmt.Errorf("audit: bundle seal: %w", err)
	}
	var b Bundle
	if err := json.Unmarshal(verified, &b); err != nil {
		return nil, fmt.Errorf("audit: bundle payload: %w", err)
	}
	if b.Schema != BundleSchema {
		return nil, fmt.Errorf("audit: bundle schema %q, want %q", b.Schema, BundleSchema)
	}
	return &b, nil
}

// Render pretty-prints the bundle for terminal output (grtdiag bundle).
func (b *Bundle) Render() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "diagnostic bundle (%s)\n", b.Schema)
	if b.Session != "" {
		fmt.Fprintf(&sb, "  session:     %s\n", b.Session)
	}
	fmt.Fprintf(&sb, "  reason:      %s\n", b.Reason)
	fmt.Fprintf(&sb, "  detail:      %s\n", b.Detail)
	if b.Fingerprint != "" {
		fmt.Fprintf(&sb, "  fingerprint: %s\n", b.Fingerprint)
	}
	fmt.Fprintf(&sb, "  virtual time: %.6f ms\n", float64(b.VTNS)/1e6)
	if b.Quarantine != nil {
		fmt.Fprintf(&sb, "  quarantine:  %s (%d bytes): %s\n",
			b.Quarantine.Reason, b.Quarantine.Bytes, b.Quarantine.Detail)
	}
	if len(b.Flight) > 0 {
		fmt.Fprintf(&sb, "  flight tail (%d events):\n", len(b.Flight))
		for _, e := range b.Flight {
			fmt.Fprintf(&sb, "    %s\n", e)
		}
	}
	if b.Metrics != "" {
		fmt.Fprintf(&sb, "  metrics snapshot: %d lines of Prometheus text\n",
			strings.Count(b.Metrics, "\n"))
	}
	return sb.String()
}

// SealedBundle pairs a bundle with its seal, as retained by a BundleLog.
type SealedBundle struct {
	Bundle *Bundle
	Signed *trace.Signed
}

// DefaultBundleCapacity bounds a BundleLog's retained bundles.
const DefaultBundleCapacity = 32

// BundleLog is a bounded, thread-safe ring of sealed diagnostic bundles,
// newest-biased like the quarantine: when full the oldest is dropped, while
// the total capture count stays monotonic.
type BundleLog struct {
	mu      sync.Mutex
	bundles []SealedBundle
	start   int
	total   int
	cap     int
}

// NewBundleLog creates a log retaining at most capacity bundles
// (DefaultBundleCapacity if <= 0).
func NewBundleLog(capacity int) *BundleLog {
	if capacity <= 0 {
		capacity = DefaultBundleCapacity
	}
	return &BundleLog{cap: capacity}
}

// Add retains one sealed bundle. Safe (and a no-op) on a nil log.
func (l *BundleLog) Add(sb SealedBundle) {
	if l == nil {
		return
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	l.total++
	if len(l.bundles) < l.cap {
		l.bundles = append(l.bundles, sb)
	} else {
		l.bundles[l.start] = sb
		l.start = (l.start + 1) % l.cap
	}
}

// Entries returns the retained bundles, oldest first.
func (l *BundleLog) Entries() []SealedBundle {
	if l == nil {
		return nil
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	out := make([]SealedBundle, 0, len(l.bundles))
	for i := 0; i < len(l.bundles); i++ {
		out = append(out, l.bundles[(l.start+i)%len(l.bundles)])
	}
	return out
}

// Last returns the newest retained bundle, or a zero SealedBundle and false
// when none has been captured.
func (l *BundleLog) Last() (SealedBundle, bool) {
	if l == nil {
		return SealedBundle{}, false
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if len(l.bundles) == 0 {
		return SealedBundle{}, false
	}
	idx := (l.start + len(l.bundles) - 1) % len(l.bundles)
	return l.bundles[idx], true
}

// Total returns the number of bundles ever captured, including ones since
// evicted from the ring.
func (l *BundleLog) Total() int {
	if l == nil {
		return 0
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.total
}

// EncodeBundleFile writes a sealed bundle in the GRTD file layout: magic +
// uint32-LE length-prefixed (payload, mac, key) chunks. Bundling the key
// follows the demo-CLI convention of recordings and checkpoints; a real
// deployment keeps it in secure storage.
func EncodeBundleFile(w io.Writer, signed *trace.Signed, key []byte) error {
	if _, err := io.WriteString(w, BundleMagic); err != nil {
		return err
	}
	for _, chunk := range [][]byte{signed.Payload, signed.MAC[:], key} {
		if err := binary.Write(w, binary.LittleEndian, uint32(len(chunk))); err != nil {
			return err
		}
		if _, err := w.Write(chunk); err != nil {
			return err
		}
	}
	return nil
}

// DecodeBundleFile reads a GRTD file back into (payload, mac, key) chunks.
// It bounds each chunk by the bytes actually present, so a corrupt length
// prefix cannot force allocation beyond the file size.
func DecodeBundleFile(r io.Reader) (payload, mac, key []byte, err error) {
	data, err := io.ReadAll(r)
	if err != nil {
		return nil, nil, nil, err
	}
	if len(data) < len(BundleMagic) || string(data[:len(BundleMagic)]) != BundleMagic {
		return nil, nil, nil, fmt.Errorf("audit: not a diagnostic bundle (GRTD) file")
	}
	rest := data[len(BundleMagic):]
	next := func() ([]byte, error) {
		if len(rest) < 4 {
			return nil, fmt.Errorf("audit: bundle file truncated")
		}
		n := binary.LittleEndian.Uint32(rest)
		rest = rest[4:]
		if uint32(len(rest)) < n {
			return nil, fmt.Errorf("audit: bundle chunk of %d bytes, %d remain", n, len(rest))
		}
		chunk := rest[:n]
		rest = rest[n:]
		return chunk, nil
	}
	if payload, err = next(); err != nil {
		return nil, nil, nil, err
	}
	if mac, err = next(); err != nil {
		return nil, nil, nil, err
	}
	if key, err = next(); err != nil {
		return nil, nil, nil, err
	}
	if len(bytes.TrimSpace(rest)) != 0 {
		return nil, nil, nil, fmt.Errorf("audit: %d trailing bytes after bundle chunks", len(rest))
	}
	return payload, mac, key, nil
}
