// Package netsim models the cloud↔client network path of GR-T.
//
// The paper shapes the path with NetEm into two conditions (§7.2): a WiFi-like
// link (20 ms RTT, 80 Mbps) and a cellular-like link (50 ms RTT, 40 Mbps).
// netsim reproduces the same first-order model — a fixed propagation RTT plus
// store-and-forward serialization at the bottleneck bandwidth — on top of the
// virtual clock, and keeps the traffic statistics that the paper's Table 1
// reports (blocking round trips, synchronization bytes).
package netsim

import (
	"context"
	"fmt"
	"sync"
	"time"

	"gpurelay/internal/obs"
	"gpurelay/internal/timesim"
)

// Condition describes a network condition, mirroring a NetEm configuration.
type Condition struct {
	Name string
	// RTT is the round-trip propagation delay (both directions combined).
	RTT time.Duration
	// Bandwidth is the bottleneck bandwidth in bits per second, applied to
	// payloads in each direction.
	Bandwidth int64
	// Jitter adds a deterministic pseudo-random delay in [0, Jitter) to
	// each round trip, like NetEm's delay variance.
	Jitter time.Duration
	// LossPct is the per-round-trip probability (in percent) of a lost
	// exchange; a loss costs a retransmission timeout plus a retry. The
	// paper's §3.1 limitation — "poor network condition can slow down the
	// entire recording" — shows up through this knob.
	LossPct float64
}

// retransmitTimeout is the cost of detecting one lost exchange before the
// retry, a TCP-like RTO floor.
const retransmitTimeout = 200 * time.Millisecond

// maxEffectiveLossPct caps the combined (condition + injected) loss
// probability so the retransmit retry loop always terminates: a link that
// never delivers anything is a fatal fault, not a loss rate.
const maxEffectiveLossPct = 95.0

// The two conditions evaluated in the paper (§7.2), plus a loopback used to
// model local (on-device) recording baselines and unit tests.
var (
	WiFi     = Condition{Name: "wifi", RTT: 20 * time.Millisecond, Bandwidth: 80_000_000}
	Cellular = Condition{Name: "cellular", RTT: 50 * time.Millisecond, Bandwidth: 40_000_000}
	Loopback = Condition{Name: "loopback", RTT: 10 * time.Microsecond, Bandwidth: 10_000_000_000}
	// PoorCellular models the §3.1 "poor network condition" limitation:
	// higher latency, jitter, and packet loss.
	PoorCellular = Condition{Name: "poor-cellular", RTT: 120 * time.Millisecond,
		Bandwidth: 10_000_000, Jitter: 40 * time.Millisecond, LossPct: 1}
)

// TransferTime returns the serialization delay of n payload bytes at the
// condition's bandwidth.
func (c Condition) TransferTime(n int64) time.Duration {
	if n < 0 {
		panic(fmt.Sprintf("netsim: negative payload %d", n))
	}
	if c.Bandwidth <= 0 {
		panic(fmt.Sprintf("netsim: condition %q has no bandwidth", c.Name))
	}
	bits := n * 8
	return time.Duration(float64(bits) / float64(c.Bandwidth) * float64(time.Second))
}

// Stats accumulates traffic statistics for one link.
type Stats struct {
	// BlockingRTTs counts round trips during which the initiator stalled.
	// This is the "# Blocking RTTs" column of Table 1.
	BlockingRTTs int
	// AsyncRTTs counts round trips whose latency was hidden by speculation.
	AsyncRTTs int
	// BytesSent and BytesReceived count payload bytes from the initiator's
	// point of view (cloud → client and client → cloud respectively).
	BytesSent     int64
	BytesReceived int64
	// Busy is the total virtual time the radio spent transmitting or
	// receiving, used by the energy model.
	Busy time.Duration
	// Retransmits counts lost exchanges that had to be retried.
	Retransmits int
	// FaultStalls counts exchanges delayed by an injected link fault, and
	// FaultDelay their total injected latency (chaos testing only; both
	// stay zero on a healthy link).
	FaultStalls int
	FaultDelay  time.Duration
}

// TotalRTTs returns all round trips regardless of blocking behaviour.
func (s Stats) TotalRTTs() int { return s.BlockingRTTs + s.AsyncRTTs }

// TotalBytes returns payload bytes in both directions.
func (s Stats) TotalBytes() int64 { return s.BytesSent + s.BytesReceived }

// Canceled is thrown (via panic) out of a blocking link operation when the
// link's bound context is done. The blocking round trips happen deep inside
// the simulated GPU driver, which — like the real kbase driver — has no
// error-return path for "the remote side hung up"; record.RunContext
// recovers the panic at the session boundary and converts it into an
// ordinary error wrapping the context's cause. Code outside the record path
// never observes it.
type Canceled struct{ Err error }

func (c Canceled) Error() string { return "netsim: link canceled: " + c.Err.Error() }

// Unwrap exposes the context error (context.Canceled or DeadlineExceeded)
// to errors.Is.
func (c Canceled) Unwrap() error { return c.Err }

// SessionLost is thrown (via panic) out of a link operation when an injected
// fault kills the session — an outage past the liveness timeout, or a VM
// crash surfacing as a dead peer. Like Canceled, it exists because the
// simulated driver has no error path for a vanished remote; record.RunContext
// recovers it at the session boundary and converts it into an error wrapping
// grterr.ErrSessionLost (carried by Err).
type SessionLost struct{ Err error }

func (s SessionLost) Error() string { return "netsim: session lost: " + s.Err.Error() }

// Unwrap exposes the underlying fault error to errors.Is.
func (s SessionLost) Unwrap() error { return s.Err }

// FaultInjector perturbs link exchanges for chaos testing. Exchange is
// consulted once per round trip (or one-way message) with the current
// virtual time and the exchange's unperturbed latency; it returns extra
// latency to add, extra loss probability (percent) to apply, and — for
// fatal faults — a non-nil kill error that tears the session down via a
// SessionLost panic. Implementations must be deterministic in virtual time
// and safe for concurrent use.
type FaultInjector interface {
	Exchange(now, base time.Duration) (extra time.Duration, lossPct float64, kill error)
}

// Link is one end-to-end path between the cloud VM and the client TEE,
// bound to a virtual clock. Methods advance that clock; they never sleep.
type Link struct {
	cond  Condition
	clock timesim.Time
	ctx   context.Context
	// obs collects per-session telemetry (round-trip counters and spans on
	// the virtual clock); nil means uninstrumented and is a true no-op.
	obs *obs.Scope
	// faults, when non-nil, perturbs every exchange (chaos testing). Like
	// obs and ctx it is installed before the link is shared.
	faults FaultInjector

	mu    sync.Mutex
	stats Stats
	rng   uint64
}

// NewLink creates a link with the given condition on clock. Jitter and loss
// draws are deterministic for a given condition (seeded from its name), so
// experiments stay reproducible.
func NewLink(cond Condition, clock timesim.Time) *Link {
	if clock == nil {
		panic("netsim: nil clock")
	}
	seed := uint64(88172645463325252)
	for _, c := range cond.Name {
		seed = seed*31 + uint64(c)
	}
	return &Link{cond: cond, clock: clock, rng: seed | 1}
}

// draw returns a deterministic pseudo-random float64 in [0, 1).
func (l *Link) draw() float64 {
	l.rng ^= l.rng << 13
	l.rng ^= l.rng >> 7
	l.rng ^= l.rng << 17
	return float64(l.rng%1_000_000) / 1_000_000
}

// perturb applies jitter and loss (the condition's own plus any injected
// extra) to one exchange's base latency, updating the retransmit counter
// under l.mu. It returns the perturbed latency and the number of
// retransmissions this exchange suffered.
func (l *Link) perturb(base time.Duration, extraLoss float64) (time.Duration, int) {
	if l.cond.Jitter > 0 {
		base += time.Duration(l.draw() * float64(l.cond.Jitter))
	}
	loss := l.cond.LossPct + extraLoss
	if loss > maxEffectiveLossPct {
		loss = maxEffectiveLossPct
	}
	retries := 0
	for loss > 0 && l.draw()*100 < loss {
		base += retransmitTimeout + l.cond.RTT
		l.stats.Retransmits++
		retries++
	}
	return base, retries
}

// Instrument attaches a telemetry scope: every subsequent round trip counts
// into it and (capacity permitting) records a span on the virtual clock. A
// nil scope leaves the link uninstrumented.
func (l *Link) Instrument(scope *obs.Scope) { l.obs = scope }

// InjectFaults installs a fault injector consulted on every exchange. Like
// Bind, it must be called before the link is shared with the recording
// pipeline.
func (l *Link) InjectFaults(f FaultInjector) { l.faults = f }

// applyFaults consults the injector for one exchange of the given base
// latency. Fatal faults abort the session with a SessionLost panic;
// otherwise the injected extra latency and extra loss probability are
// returned for the caller to fold into the exchange.
func (l *Link) applyFaults(base time.Duration) (time.Duration, float64) {
	f := l.faults
	if f == nil {
		return 0, 0
	}
	extra, loss, kill := f.Exchange(l.clock.Now(), base)
	if kill != nil {
		panic(SessionLost{Err: kill})
	}
	if extra < 0 {
		extra = 0
	}
	if loss < 0 {
		loss = 0
	}
	if extra > 0 {
		l.mu.Lock()
		l.stats.FaultStalls++
		l.stats.FaultDelay += extra
		l.mu.Unlock()
		l.obs.Count(obs.MNetFaultStallNS, int64(extra))
	}
	return extra, loss
}

// Bind attaches a context to the link. Every subsequent blocking operation
// checks the context before advancing the clock and aborts the session with
// a Canceled panic once the context is done. Bind must be called before the
// link is shared with the recording pipeline.
func (l *Link) Bind(ctx context.Context) { l.ctx = ctx }

// checkCtx aborts the in-flight exchange if the bound context is done.
func (l *Link) checkCtx() {
	if l.ctx == nil {
		return
	}
	if err := l.ctx.Err(); err != nil {
		panic(Canceled{Err: err})
	}
}

// Condition returns the link's network condition.
func (l *Link) Condition() Condition { return l.cond }

// Stats returns a snapshot of the link's accumulated statistics.
func (l *Link) Stats() Stats {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.stats
}

// ResetStats zeroes the statistics, e.g. between the warm-up and measured
// phases of an experiment.
func (l *Link) ResetStats() {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.stats = Stats{}
}

// cost returns the end-to-end latency of one round trip carrying the given
// payloads.
func (l *Link) cost(reqBytes, respBytes int64) (total, busy time.Duration) {
	busy = l.cond.TransferTime(reqBytes) + l.cond.TransferTime(respBytes)
	return l.cond.RTT + busy, busy
}

// RoundTrip performs a synchronous (blocking) round trip: the initiator sends
// reqBytes, the peer replies with respBytes, and the initiator stalls for the
// whole exchange. The virtual clock advances by RTT plus serialization time.
// It returns the time at which the response arrived.
func (l *Link) RoundTrip(reqBytes, respBytes int64) time.Duration {
	l.checkCtx()
	total, busy := l.cost(reqBytes, respBytes)
	extra, extraLoss := l.applyFaults(total)
	total += extra
	l.mu.Lock()
	var retries int
	total, retries = l.perturb(total, extraLoss)
	l.mu.Unlock()
	endSpan := l.obs.Span("net.rtt", "net",
		obs.A("req_bytes", reqBytes), obs.A("resp_bytes", respBytes))
	done := l.clock.Advance(total)
	endSpan()
	l.mu.Lock()
	l.stats.BlockingRTTs++
	l.stats.BytesSent += reqBytes
	l.stats.BytesReceived += respBytes
	l.stats.Busy += busy
	l.mu.Unlock()
	l.obs.Count(obs.MNetRTTs, 1, obs.L("mode", "blocking"))
	l.obs.Count(obs.MNetBytes, reqBytes, obs.L("dir", "sent"))
	l.obs.Count(obs.MNetBytes, respBytes, obs.L("dir", "recv"))
	if retries > 0 {
		l.obs.Count(obs.MNetRetransmits, int64(retries))
	}
	return done
}

// AsyncRoundTrip initiates a round trip whose latency is overlapped with the
// initiator's continued execution (a speculative commit, §4.2). The clock is
// NOT advanced; instead the completion time is returned so the caller can
// later wait for it with WaitUntil if and when validation requires it.
func (l *Link) AsyncRoundTrip(reqBytes, respBytes int64) (completion time.Duration) {
	l.checkCtx()
	total, busy := l.cost(reqBytes, respBytes)
	extra, extraLoss := l.applyFaults(total)
	total += extra
	l.mu.Lock()
	var retries int
	total, retries = l.perturb(total, extraLoss)
	l.stats.AsyncRTTs++
	l.stats.BytesSent += reqBytes
	l.stats.BytesReceived += respBytes
	l.stats.Busy += busy
	l.mu.Unlock()
	l.obs.Count(obs.MNetRTTs, 1, obs.L("mode", "async"))
	l.obs.Count(obs.MNetBytes, reqBytes, obs.L("dir", "sent"))
	l.obs.Count(obs.MNetBytes, respBytes, obs.L("dir", "recv"))
	if retries > 0 {
		l.obs.Count(obs.MNetRetransmits, int64(retries))
	}
	return l.clock.Now() + total
}

// WaitUntil blocks (in virtual time) until t: if t is still in the future the
// clock advances to it, otherwise nothing happens. It returns the stall
// duration that was actually incurred.
func (l *Link) WaitUntil(t time.Duration) time.Duration {
	l.checkCtx()
	now := l.clock.Now()
	if t <= now {
		return 0
	}
	endSpan := l.obs.Span("net.wait", "net")
	l.clock.AdvanceTo(t)
	endSpan()
	l.obs.Count(obs.MNetStallNS, int64(t-now))
	return t - now
}

// ScheduleOneWay posts a unidirectional message of n bytes as a deferred
// delivery event on s: the sender does not stall (its clock is untouched),
// and fn runs at the arrival time — half an RTT plus serialization, plus any
// injected fault latency — ordered against other engine events by key. It
// returns the arrival time. Traffic statistics are accounted at send time,
// exactly as OneWay accounts them, so a link's Stats are identical whichever
// form a message takes.
func (l *Link) ScheduleOneWay(s timesim.Scheduler, key uint64, n int64, fn func()) time.Duration {
	l.checkCtx()
	busy := l.cond.TransferTime(n)
	extra, _ := l.applyFaults(l.cond.RTT/2 + busy)
	delay := l.cond.RTT/2 + busy + extra
	l.mu.Lock()
	l.stats.BytesSent += n
	l.stats.Busy += busy
	l.mu.Unlock()
	l.obs.Count(obs.MNetBytes, n, obs.L("dir", "sent"))
	arrival := s.Now() + delay
	timesim.After(s, delay, key, func() error {
		if fn != nil {
			fn()
		}
		return nil
	})
	return arrival
}

// OneWay models a unidirectional message (e.g. the final recording download
// or an interrupt notification) of n bytes: half an RTT plus serialization.
func (l *Link) OneWay(n int64) time.Duration {
	l.checkCtx()
	busy := l.cond.TransferTime(n)
	extra, _ := l.applyFaults(l.cond.RTT/2 + busy)
	endSpan := l.obs.Span("net.oneway", "net", obs.A("bytes", n))
	done := l.clock.Advance(l.cond.RTT/2 + busy + extra)
	endSpan()
	l.mu.Lock()
	l.stats.BytesSent += n
	l.stats.Busy += busy
	l.mu.Unlock()
	l.obs.Count(obs.MNetBytes, n, obs.L("dir", "sent"))
	return done
}
