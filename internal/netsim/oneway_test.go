package netsim

import (
	"testing"
	"time"

	"gpurelay/internal/timesim"
)

func TestScheduleOneWayDeliversAtArrivalTime(t *testing.T) {
	eng := timesim.NewSerialEngine()
	clock := timesim.NewClock()
	l := NewLink(WiFi, clock)

	const n = 1 << 20
	wantDelay := WiFi.RTT/2 + WiFi.TransferTime(n)
	var deliveredAt time.Duration
	arrival := l.ScheduleOneWay(eng, 5, n, func() { deliveredAt = eng.Now() })
	if arrival != wantDelay {
		t.Fatalf("arrival = %v, want %v", arrival, wantDelay)
	}
	if clock.Now() != 0 {
		t.Fatal("ScheduleOneWay advanced the sender's clock; it must not stall")
	}
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	if deliveredAt != wantDelay {
		t.Fatalf("delivered at %v, want %v", deliveredAt, wantDelay)
	}
	st := l.Stats()
	if st.BytesSent != n {
		t.Fatalf("BytesSent = %d, want %d", st.BytesSent, n)
	}
	if st.Busy != WiFi.TransferTime(n) {
		t.Fatalf("Busy = %v, want %v", st.Busy, WiFi.TransferTime(n))
	}
}

func TestScheduleOneWayMatchesOneWayStats(t *testing.T) {
	// Whichever form a message takes, the link's traffic statistics agree.
	const n = 4096
	sync := NewLink(Cellular, timesim.NewClock())
	sync.OneWay(n)

	eng := timesim.NewSerialEngine()
	async := NewLink(Cellular, timesim.NewClock())
	async.ScheduleOneWay(eng, 0, n, nil)
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	if a, b := sync.Stats(), async.Stats(); a.BytesSent != b.BytesSent || a.Busy != b.Busy {
		t.Fatalf("stats diverge: OneWay %+v vs ScheduleOneWay %+v", a, b)
	}
}
