package netsim

import (
	"context"
	"errors"
	"testing"
	"time"

	"gpurelay/internal/timesim"
)

func TestTransferTime(t *testing.T) {
	// 80 Mbps = 10 MB/s, so 1 MB takes 100 ms.
	got := WiFi.TransferTime(1_000_000)
	if got != 100*time.Millisecond {
		t.Fatalf("WiFi transfer of 1MB = %v, want 100ms", got)
	}
	if got := Cellular.TransferTime(0); got != 0 {
		t.Fatalf("zero payload transfer = %v, want 0", got)
	}
}

func TestTransferTimeNegativePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("negative payload did not panic")
		}
	}()
	WiFi.TransferTime(-1)
}

func TestRoundTripAdvancesClock(t *testing.T) {
	clock := timesim.NewClock()
	l := NewLink(WiFi, clock)
	l.RoundTrip(200, 400) // 600 bytes at 10MB/s = 60us
	want := 20*time.Millisecond + 60*time.Microsecond
	if got := clock.Now(); got != want {
		t.Fatalf("clock after round trip = %v, want %v", got, want)
	}
	s := l.Stats()
	if s.BlockingRTTs != 1 || s.AsyncRTTs != 0 {
		t.Fatalf("stats = %+v, want 1 blocking RTT", s)
	}
	if s.BytesSent != 200 || s.BytesReceived != 400 {
		t.Fatalf("byte counters = %+v", s)
	}
}

func TestAsyncRoundTripDoesNotBlock(t *testing.T) {
	clock := timesim.NewClock()
	l := NewLink(Cellular, clock)
	completion := l.AsyncRoundTrip(1000, 1000)
	if got := clock.Now(); got != 0 {
		t.Fatalf("async round trip advanced clock to %v", got)
	}
	if completion <= 50*time.Millisecond {
		t.Fatalf("completion %v too early, want > RTT", completion)
	}
	if s := l.Stats(); s.AsyncRTTs != 1 || s.BlockingRTTs != 0 {
		t.Fatalf("stats = %+v, want 1 async RTT", s)
	}
}

func TestWaitUntil(t *testing.T) {
	clock := timesim.NewClock()
	l := NewLink(WiFi, clock)
	completion := l.AsyncRoundTrip(0, 0)
	// Driver does 5ms of work, then must validate: stalls for the rest.
	clock.Advance(5 * time.Millisecond)
	stall := l.WaitUntil(completion)
	if want := 15 * time.Millisecond; stall != want {
		t.Fatalf("stall = %v, want %v", stall, want)
	}
	// Waiting again for a past deadline is free.
	if stall := l.WaitUntil(completion); stall != 0 {
		t.Fatalf("second wait stalled %v, want 0", stall)
	}
}

func TestWaitUntilFullyHidden(t *testing.T) {
	clock := timesim.NewClock()
	l := NewLink(WiFi, clock)
	completion := l.AsyncRoundTrip(0, 0)
	clock.Advance(time.Second) // plenty of overlapping work
	if stall := l.WaitUntil(completion); stall != 0 {
		t.Fatalf("stall = %v, want 0 for fully hidden RTT", stall)
	}
}

func TestOneWay(t *testing.T) {
	clock := timesim.NewClock()
	l := NewLink(WiFi, clock)
	l.OneWay(1_000_000)
	want := 10*time.Millisecond + 100*time.Millisecond
	if got := clock.Now(); got != want {
		t.Fatalf("one-way = %v, want %v", got, want)
	}
}

func TestResetStats(t *testing.T) {
	l := NewLink(WiFi, timesim.NewClock())
	l.RoundTrip(10, 10)
	l.ResetStats()
	if s := l.Stats(); s != (Stats{}) {
		t.Fatalf("stats after reset = %+v, want zero", s)
	}
}

func TestStatsTotals(t *testing.T) {
	s := Stats{BlockingRTTs: 3, AsyncRTTs: 4, BytesSent: 10, BytesReceived: 20}
	if s.TotalRTTs() != 7 {
		t.Fatalf("TotalRTTs = %d, want 7", s.TotalRTTs())
	}
	if s.TotalBytes() != 30 {
		t.Fatalf("TotalBytes = %d, want 30", s.TotalBytes())
	}
}

func TestCellularSlowerThanWiFi(t *testing.T) {
	// Sanity: same exchange must take strictly longer on cellular.
	run := func(cond Condition) time.Duration {
		clock := timesim.NewClock()
		l := NewLink(cond, clock)
		for i := 0; i < 10; i++ {
			l.RoundTrip(300, 300)
		}
		return clock.Now()
	}
	if w, c := run(WiFi), run(Cellular); c <= w {
		t.Fatalf("cellular (%v) not slower than wifi (%v)", c, w)
	}
}

func TestJitterBounds(t *testing.T) {
	cond := Condition{Name: "jittery", RTT: 20 * time.Millisecond,
		Bandwidth: 80_000_000, Jitter: 10 * time.Millisecond}
	clock := timesim.NewClock()
	l := NewLink(cond, clock)
	varied := false
	prev := time.Duration(-1)
	for i := 0; i < 50; i++ {
		before := clock.Now()
		l.RoundTrip(0, 0)
		d := clock.Now() - before
		if d < cond.RTT || d >= cond.RTT+cond.Jitter {
			t.Fatalf("round trip %v outside [RTT, RTT+jitter)", d)
		}
		if prev >= 0 && d != prev {
			varied = true
		}
		prev = d
	}
	if !varied {
		t.Fatal("jitter produced constant delays")
	}
}

func TestLossCostsRetransmits(t *testing.T) {
	lossy := Condition{Name: "lossy", RTT: 20 * time.Millisecond,
		Bandwidth: 80_000_000, LossPct: 20}
	clean := Condition{Name: "clean", RTT: 20 * time.Millisecond, Bandwidth: 80_000_000}
	run := func(cond Condition) (time.Duration, Stats) {
		clock := timesim.NewClock()
		l := NewLink(cond, clock)
		for i := 0; i < 200; i++ {
			l.RoundTrip(100, 100)
		}
		return clock.Now(), l.Stats()
	}
	lossyT, lossyS := run(lossy)
	cleanT, cleanS := run(clean)
	if lossyS.Retransmits == 0 {
		t.Fatal("20% loss produced no retransmits")
	}
	if cleanS.Retransmits != 0 {
		t.Fatal("lossless link retransmitted")
	}
	if lossyT <= cleanT {
		t.Fatalf("loss did not slow the link: %v vs %v", lossyT, cleanT)
	}
	// Expected ~40 retransmits of 200 exchanges at 20%.
	if lossyS.Retransmits < 15 || lossyS.Retransmits > 80 {
		t.Fatalf("retransmits = %d, want ~40", lossyS.Retransmits)
	}
}

func TestLossDeterministicPerCondition(t *testing.T) {
	cond := Condition{Name: "repro", RTT: time.Millisecond, Bandwidth: 1e9, LossPct: 10, Jitter: time.Millisecond}
	run := func() time.Duration {
		clock := timesim.NewClock()
		l := NewLink(cond, clock)
		for i := 0; i < 100; i++ {
			l.RoundTrip(10, 10)
		}
		return clock.Now()
	}
	if a, b := run(), run(); a != b {
		t.Fatalf("same condition produced different timelines: %v vs %v", a, b)
	}
}

func TestLinkContextCancellationAbortsBlockingOps(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	clock := timesim.NewClock()
	l := NewLink(WiFi, clock)
	l.Bind(ctx)
	l.RoundTrip(100, 100) // live context: exchanges proceed
	before := clock.Now()
	cancel()

	expectCanceled := func(name string, op func()) {
		defer func() {
			r := recover()
			c, ok := r.(Canceled)
			if !ok {
				t.Fatalf("%s after cancel: recovered %v, want Canceled", name, r)
			}
			if !errors.Is(c, context.Canceled) {
				t.Fatalf("%s: %v does not unwrap to context.Canceled", name, c)
			}
		}()
		op()
		t.Fatalf("%s completed on a canceled link", name)
	}
	expectCanceled("RoundTrip", func() { l.RoundTrip(1, 1) })
	expectCanceled("AsyncRoundTrip", func() { l.AsyncRoundTrip(1, 1) })
	expectCanceled("WaitUntil", func() { l.WaitUntil(clock.Now() + time.Second) })
	expectCanceled("OneWay", func() { l.OneWay(1) })
	if clock.Now() != before {
		t.Fatalf("canceled operations advanced the clock: %v -> %v", before, clock.Now())
	}
}

func TestLinkWithoutContextNeverCancels(t *testing.T) {
	clock := timesim.NewClock()
	l := NewLink(WiFi, clock)
	l.RoundTrip(1, 1)
	l.OneWay(1)
	if l.Stats().BlockingRTTs != 1 {
		t.Fatalf("stats: %+v", l.Stats())
	}
}
