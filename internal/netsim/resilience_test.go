package netsim

// Direct Link tests for the resilience layer: retransmit determinism under a
// fixed seed, the effective-loss clamp, and the fault-injection hook.

import (
	"errors"
	"testing"
	"time"

	"gpurelay/internal/timesim"
)

// injectorFunc adapts a function to the FaultInjector interface.
type injectorFunc func(now, base time.Duration) (time.Duration, float64, error)

func (f injectorFunc) Exchange(now, base time.Duration) (time.Duration, float64, error) {
	return f(now, base)
}

// TestLossyLinkDeterministicUnderSeed drives two identical lossy, jittery
// links through the same exchange schedule: every statistic and the final
// virtual clock must match exactly (the link rng is seeded from the
// condition name alone).
func TestLossyLinkDeterministicUnderSeed(t *testing.T) {
	cond := Condition{Name: "chaos-lossy", RTT: 120 * time.Millisecond,
		Bandwidth: 10_000_000, Jitter: 40 * time.Millisecond, LossPct: 8}
	run := func() (time.Duration, Stats) {
		clock := timesim.NewClock()
		l := NewLink(cond, clock)
		for i := 0; i < 400; i++ {
			switch i % 3 {
			case 0:
				l.RoundTrip(int64(i%7)*100, int64(i%5)*200)
			case 1:
				l.WaitUntil(l.AsyncRoundTrip(64, 64))
			case 2:
				l.OneWay(int64(i%11) * 50)
			}
		}
		return clock.Now(), l.Stats()
	}
	t1, s1 := run()
	t2, s2 := run()
	if t1 != t2 {
		t.Fatalf("same seed, different timelines: %v vs %v", t1, t2)
	}
	if s1 != s2 {
		t.Fatalf("same seed, different stats:\n%+v\n%+v", s1, s2)
	}
	if s1.Retransmits == 0 {
		t.Fatal("8% loss over 400 exchanges produced no retransmits")
	}
	// Every retransmit costs at least the RTO plus one RTT on top of the
	// loss-free schedule.
	if floor := time.Duration(s1.Retransmits) * (retransmitTimeout + cond.RTT); t1 < floor {
		t.Fatalf("timeline %v below the retransmit floor %v", t1, floor)
	}
}

// TestLossClampTerminates checks the maxEffectiveLossPct cap: even a
// nominally 100%-lossy link (plus injected loss on top) keeps delivering,
// because the retry loop draws against a capped probability.
func TestLossClampTerminates(t *testing.T) {
	cond := Condition{Name: "black-hole", RTT: 10 * time.Millisecond,
		Bandwidth: 1_000_000_000, LossPct: 100}
	clock := timesim.NewClock()
	l := NewLink(cond, clock)
	l.InjectFaults(injectorFunc(func(now, base time.Duration) (time.Duration, float64, error) {
		return 0, 50, nil // 150% combined, clamped to 95%
	}))
	for i := 0; i < 25; i++ {
		l.RoundTrip(100, 100)
	}
	s := l.Stats()
	if s.BlockingRTTs != 25 {
		t.Fatalf("completed %d of 25 exchanges", s.BlockingRTTs)
	}
	// At 95% effective loss each exchange retries ~19x on average.
	if s.Retransmits < 100 {
		t.Fatalf("retransmits = %d, implausibly low for 95%% loss", s.Retransmits)
	}
}

// TestInjectedLossDeterministic checks injected extra loss rides the same
// deterministic rng as the condition's own.
func TestInjectedLossDeterministic(t *testing.T) {
	run := func() (time.Duration, Stats) {
		clock := timesim.NewClock()
		l := NewLink(WiFi, clock) // WiFi itself is loss-free
		l.InjectFaults(injectorFunc(func(now, base time.Duration) (time.Duration, float64, error) {
			if now < 2*time.Second {
				return 0, 40, nil
			}
			return 0, 0, nil
		}))
		for i := 0; i < 200; i++ {
			l.RoundTrip(100, 100)
		}
		return clock.Now(), l.Stats()
	}
	t1, s1 := run()
	t2, s2 := run()
	if t1 != t2 || s1 != s2 {
		t.Fatalf("injected loss not deterministic: %v/%+v vs %v/%+v", t1, s1, t2, s2)
	}
	if s1.Retransmits == 0 {
		t.Fatal("injected 40% loss produced no retransmits")
	}
}

// TestInjectedStallDelaysAndCounts checks transient fault latency is added
// to the exchange and accounted in FaultStalls/FaultDelay.
func TestInjectedStallDelaysAndCounts(t *testing.T) {
	clock := timesim.NewClock()
	l := NewLink(WiFi, clock)
	const stall = 500 * time.Millisecond
	l.InjectFaults(injectorFunc(func(now, base time.Duration) (time.Duration, float64, error) {
		if now == 0 {
			return stall, 0, nil
		}
		return 0, 0, nil
	}))
	l.RoundTrip(0, 0)
	if want := WiFi.RTT + stall; clock.Now() != want {
		t.Fatalf("stalled exchange took %v, want %v", clock.Now(), want)
	}
	l.RoundTrip(0, 0) // outside the fault: no stall
	s := l.Stats()
	if s.FaultStalls != 1 || s.FaultDelay != stall {
		t.Fatalf("fault accounting = %d stalls / %v delay, want 1 / %v", s.FaultStalls, s.FaultDelay, stall)
	}
}

// TestInjectedKillPanicsSessionLost checks a fatal fault tears down every
// blocking primitive with a SessionLost panic that unwraps to the injector's
// error, without advancing the clock.
func TestInjectedKillPanicsSessionLost(t *testing.T) {
	errDead := errors.New("peer vanished")
	clock := timesim.NewClock()
	l := NewLink(WiFi, clock)
	l.RoundTrip(1, 1) // healthy before the injector is armed
	l.InjectFaults(injectorFunc(func(now, base time.Duration) (time.Duration, float64, error) {
		return 0, 0, errDead
	}))
	before := clock.Now()

	expectLost := func(name string, op func()) {
		defer func() {
			r := recover()
			sl, ok := r.(SessionLost)
			if !ok {
				t.Fatalf("%s: recovered %v, want SessionLost", name, r)
			}
			if !errors.Is(sl, errDead) {
				t.Fatalf("%s: %v does not unwrap to the injector error", name, sl)
			}
		}()
		op()
		t.Fatalf("%s completed on a dead link", name)
	}
	expectLost("RoundTrip", func() { l.RoundTrip(1, 1) })
	expectLost("AsyncRoundTrip", func() { l.AsyncRoundTrip(1, 1) })
	expectLost("OneWay", func() { l.OneWay(1) })
	if clock.Now() != before {
		t.Fatalf("killed exchanges advanced the clock: %v -> %v", before, clock.Now())
	}
	if s := l.Stats(); s.FaultStalls != 0 {
		t.Fatalf("killed exchanges counted as stalls: %+v", s)
	}
}

// TestInjectedNegativeValuesClamped checks an injector returning negative
// extra latency or loss behaves as a no-op.
func TestInjectedNegativeValuesClamped(t *testing.T) {
	clock := timesim.NewClock()
	l := NewLink(WiFi, clock)
	l.InjectFaults(injectorFunc(func(now, base time.Duration) (time.Duration, float64, error) {
		return -time.Second, -50, nil
	}))
	l.RoundTrip(0, 0)
	if clock.Now() != WiFi.RTT {
		t.Fatalf("negative injection perturbed the exchange: %v, want %v", clock.Now(), WiFi.RTT)
	}
	if s := l.Stats(); s.FaultStalls != 0 || s.Retransmits != 0 {
		t.Fatalf("negative injection left tracks: %+v", s)
	}
}
