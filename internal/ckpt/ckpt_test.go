package ckpt

import (
	"errors"
	"testing"

	"gpurelay/internal/grterr"
	"gpurelay/internal/trace"
)

func sampleCheckpoint() *Checkpoint {
	return &Checkpoint{
		SessionID:  "phone/MNIST/00000000009e3779",
		Workload:   "MNIST",
		ProductID:  0x6221,
		PoolSize:   1 << 20,
		ClientSeed: 0x9e3779,
		Variant:    3,
		Network:    "wifi",
		Job:        3,
		Events: []trace.Event{
			{Kind: trace.KWrite, Fn: "kbase_job_submit", Reg: 0x1000, Value: 0xdead},
			{Kind: trace.KPoll, Fn: "kbase_wait_ready", Reg: 0x1004,
				Value: 1, DoneMask: 1, DoneVal: 1, MaxIters: 100, Iters: 3},
			{Kind: trace.KIRQ, IRQJob: 1, IRQGPU: 0, IRQMMU: 0},
			{Kind: trace.KDumpToCloud, Fn: "memsync", Dump: []byte{1, 2, 3, 4, 5}},
		},
		Regions: []trace.RegionInfo{
			{Name: "weights.0", Kind: 1, VA: 0x8000_0000, PA: 0x1000, Size: 4096},
			{Name: "input", Kind: 2, VA: 0x8001_0000, PA: 0x2000, Size: 3136},
		},
		SyncOutFP:   0x1122334455667788,
		SyncInFP:    0x8877665544332211,
		HistorySigs: 42,
	}
}

func checkEqual(t *testing.T, got, want *Checkpoint) {
	t.Helper()
	if got.SessionID != want.SessionID || got.Workload != want.Workload ||
		got.ProductID != want.ProductID || got.PoolSize != want.PoolSize ||
		got.ClientSeed != want.ClientSeed || got.Variant != want.Variant ||
		got.Network != want.Network || got.Job != want.Job ||
		got.SyncOutFP != want.SyncOutFP || got.SyncInFP != want.SyncInFP ||
		got.HistorySigs != want.HistorySigs {
		t.Fatalf("scalar fields differ:\ngot  %+v\nwant %+v", got, want)
	}
	if len(got.Events) != len(want.Events) {
		t.Fatalf("events: %d vs %d", len(got.Events), len(want.Events))
	}
	for i := range got.Events {
		if !got.Events[i].Equal(&want.Events[i]) {
			t.Fatalf("event %d differs:\ngot  %+v\nwant %+v", i, got.Events[i], want.Events[i])
		}
	}
	if len(got.Regions) != len(want.Regions) {
		t.Fatalf("regions: %d vs %d", len(got.Regions), len(want.Regions))
	}
	for i := range got.Regions {
		if got.Regions[i] != want.Regions[i] {
			t.Fatalf("region %d differs: %+v vs %+v", i, got.Regions[i], want.Regions[i])
		}
	}
}

func TestMarshalRoundTrip(t *testing.T) {
	cp := sampleCheckpoint()
	data, err := cp.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	var got Checkpoint
	if err := got.UnmarshalBinary(data); err != nil {
		t.Fatal(err)
	}
	checkEqual(t, &got, cp)
}

func TestUnmarshalCorrupt(t *testing.T) {
	data, err := sampleCheckpoint().MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	cases := map[string][]byte{
		"empty":      {},
		"bad magic":  append([]byte{0xff, 0xff, 0xff, 0xff}, data[4:]...),
		"cut header": data[:6],
		"cut blob":   data[:len(data)-3],
	}
	for name, d := range cases {
		var cp Checkpoint
		if err := cp.UnmarshalBinary(d); !errors.Is(err, grterr.ErrCheckpointCorrupt) {
			t.Errorf("%s: err = %v, want ErrCheckpointCorrupt", name, err)
		}
	}
}

func TestSealOpenAndTamper(t *testing.T) {
	key := []byte("0123456789abcdef0123456789abcdef")
	cp := sampleCheckpoint()
	s, err := cp.Seal(key)
	if err != nil {
		t.Fatal(err)
	}
	got, err := Open(s, key)
	if err != nil {
		t.Fatal(err)
	}
	checkEqual(t, got, cp)

	tampered := *s
	tampered.Payload = append([]byte(nil), s.Payload...)
	tampered.Payload[len(tampered.Payload)/2] ^= 0x01
	if _, err := Open(&tampered, key); !errors.Is(err, grterr.ErrCheckpointCorrupt) {
		t.Fatalf("payload flip: err = %v, want ErrCheckpointCorrupt", err)
	}

	badMAC := *s
	badMAC.MAC[0] ^= 0x01
	if _, err := Open(&badMAC, key); !errors.Is(err, grterr.ErrCheckpointCorrupt) {
		t.Fatalf("MAC flip: err = %v, want ErrCheckpointCorrupt", err)
	}

	wrongKey := append([]byte(nil), key...)
	wrongKey[0] ^= 0x01
	if _, err := Open(s, wrongKey); !errors.Is(err, grterr.ErrCheckpointCorrupt) {
		t.Fatalf("wrong key: err = %v, want ErrCheckpointCorrupt", err)
	}
}

func TestMatches(t *testing.T) {
	cp := sampleCheckpoint()
	if err := cp.Matches("MNIST", 0x6221); err != nil {
		t.Fatalf("matching checkpoint rejected: %v", err)
	}
	if err := cp.Matches("AlexNet", 0x6221); !errors.Is(err, grterr.ErrCheckpointCorrupt) {
		t.Fatalf("wrong workload: err = %v, want ErrCheckpointCorrupt", err)
	}
	if err := cp.Matches("MNIST", 0x7212); !errors.Is(err, grterr.ErrSKUMismatch) {
		t.Fatalf("wrong GPU: err = %v, want ErrSKUMismatch", err)
	}
	empty := sampleCheckpoint()
	empty.Events = nil
	if err := empty.Matches("MNIST", 0x6221); !errors.Is(err, grterr.ErrCheckpointCorrupt) {
		t.Fatalf("empty log: err = %v, want ErrCheckpointCorrupt", err)
	}
}
