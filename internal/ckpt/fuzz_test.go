package ckpt

import (
	"errors"
	"testing"

	"gpurelay/internal/fuzzcorpus"
	"gpurelay/internal/grterr"
	"gpurelay/internal/trace"
	"gpurelay/internal/wire"
)

var ckptFuzzKey = []byte("ckpt-fuzz-key-0123456789abcdef01")

var ckptFuzzLimits = wire.DecodeLimits{
	MaxEvents:    1 << 12,
	MaxRegions:   256,
	MaxStringLen: 256,
	MaxDumpBytes: 1 << 20,
	MaxAlloc:     4 << 20,
}

func ckptFuzzSeeds(tb testing.TB) [][]byte {
	tb.Helper()
	blob, err := sampleCheckpoint().MarshalBinary()
	if err != nil {
		tb.Fatalf("marshaling seed checkpoint: %v", err)
	}
	return [][]byte{blob, blob[:len(blob)/2], []byte("GRTK")}
}

// FuzzOpenCheckpoint seals arbitrary payloads under a fixed key — modeling a
// key-holding but corrupted checkpointer — and asserts OpenLimited never
// panics and every rejection wraps ErrCheckpointCorrupt, so the resume path
// stays fail-closed.
func FuzzOpenCheckpoint(f *testing.F) {
	for _, s := range ckptFuzzSeeds(f) {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, payload []byte) {
		signed, err := trace.SignBytes(payload, ckptFuzzKey)
		if err != nil {
			t.Fatalf("sealing fuzz payload: %v", err)
		}
		c, err := OpenLimited(signed, ckptFuzzKey, ckptFuzzLimits)
		if err != nil {
			if !errors.Is(err, grterr.ErrCheckpointCorrupt) {
				t.Fatalf("rejection does not wrap ErrCheckpointCorrupt: %v", err)
			}
			return
		}
		// Anything that parses must survive the resumability checks without
		// panicking.
		_ = c.Matches(c.Workload, c.ProductID)
	})
}

// Every truncation of a valid checkpoint must be rejected with the corrupt
// sentinel — whichever field the cut lands in, including mid-blob where the
// declared blob length exceeds the bytes remaining.
func TestUnmarshalEveryTruncation(t *testing.T) {
	blob, err := sampleCheckpoint().MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	var c Checkpoint
	for cut := len(blob) - 1; cut > 0; cut-- {
		if err := c.UnmarshalBinary(blob[:cut]); !errors.Is(err, grterr.ErrCheckpointCorrupt) {
			t.Fatalf("truncation to %d bytes: error %v does not wrap ErrCheckpointCorrupt", cut, err)
		}
	}
}

func TestUpdateFuzzCorpus(t *testing.T) {
	seeds := ckptFuzzSeeds(t)
	if !fuzzcorpus.Update() {
		t.Skipf("set %s=1 to regenerate testdata/fuzz", fuzzcorpus.UpdateEnv)
	}
	for _, s := range seeds {
		if err := fuzzcorpus.WriteSeed("FuzzOpenCheckpoint", s); err != nil {
			t.Fatal(err)
		}
	}
}
