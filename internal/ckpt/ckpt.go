// Package ckpt implements job-boundary checkpoints for record sessions.
//
// GR-T serializes jobs and synchronizes memory only at job edges (§5), so a
// completed job is a natural checkpoint point: the interaction log up to the
// job's last event, plus fingerprints of the memsync metastate and the
// speculation history, fully determine the session. A resumed session does
// not deserialize cloud driver state — it re-derives it by replaying the
// checkpointed log prefix through the real driver stack (the §4.2 rollback
// path, reused), verifying every re-derived event against the prefix. The
// checkpoint is therefore small, self-validating, and sealed with the same
// HMAC scheme as recordings (internal/trace).
package ckpt

import (
	"bytes"
	"encoding/binary"
	"fmt"

	"gpurelay/internal/grterr"
	"gpurelay/internal/trace"
	"gpurelay/internal/wire"
)

// ckptMagic is "GRTK" little-endian.
const ckptMagic uint32 = 0x4B545247

// Checkpoint captures a record session at a job boundary.
type Checkpoint struct {
	// SessionID identifies the logical record session across resume
	// attempts (diagnostics; printed by grtrecord on failure).
	SessionID string
	// Workload/ProductID/PoolSize pin the checkpoint to its session's
	// model and GPU exactly as a Recording would (§2.4 early binding).
	Workload  string
	ProductID uint32
	PoolSize  uint64
	// ClientSeed is the original session's seed; a resume must reuse it or
	// the re-derived log diverges (flush IDs are seed-dependent).
	ClientSeed uint64
	// Variant is the recorded shim variant; a resume must match it.
	Variant uint8
	// Network names the link profile the session was recorded over.
	Network string
	// Job is the 0-based index of the last fully completed job.
	Job int
	// Events is the interaction log up to and including Job's last event.
	Events []trace.Event
	// Regions is the region map at the checkpoint.
	Regions []trace.RegionInfo
	// SyncOutFP/SyncInFP fingerprint the memsync delta-encoder metastate
	// (previous outbound/inbound snapshot + structure); the resume path
	// re-derives the state and verifies the fingerprints at the boundary.
	SyncOutFP uint64
	SyncInFP  uint64
	// HistorySigs counts speculation-history signatures at the checkpoint
	// (diagnostic; the history itself is service-shared and survives the
	// session).
	HistorySigs uint32
}

// MarshalBinary serializes the checkpoint. The event log and region map ride
// in an embedded trace.Recording blob so the codec reuses the recording
// wire format.
func (c *Checkpoint) MarshalBinary() ([]byte, error) {
	rec := trace.Recording{
		Workload:  c.Workload,
		ProductID: c.ProductID,
		PoolSize:  c.PoolSize,
		Events:    c.Events,
		Regions:   c.Regions,
	}
	blob, err := rec.MarshalBinary()
	if err != nil {
		return nil, fmt.Errorf("ckpt: marshal log: %w", err)
	}
	// Exact-size offset encoding; the layout matches the original
	// bytes.Buffer/binary.Write implementation byte for byte.
	le := binary.LittleEndian
	out := make([]byte, 4+2+len(c.SessionID)+2+len(c.Network)+8+1+4+8+8+4+4+len(blob))
	off := 0
	pu32 := func(v uint32) { le.PutUint32(out[off:], v); off += 4 }
	pu64 := func(v uint64) { le.PutUint64(out[off:], v); off += 8 }
	ps := func(s string) {
		le.PutUint16(out[off:], uint16(len(s)))
		off += 2
		off += copy(out[off:], s)
	}
	pu32(ckptMagic)
	ps(c.SessionID)
	ps(c.Network)
	pu64(c.ClientSeed)
	out[off] = c.Variant
	off++
	pu32(uint32(c.Job))
	pu64(c.SyncOutFP)
	pu64(c.SyncInFP)
	pu32(c.HistorySigs)
	pu32(uint32(len(blob)))
	copy(out[off:], blob)
	return out, nil
}

// UnmarshalBinary parses a checkpoint under the default decode limits.
// Corruption wraps grterr.ErrCheckpointCorrupt.
func (c *Checkpoint) UnmarshalBinary(data []byte) error {
	return c.UnmarshalBinaryLimited(data, wire.DefaultLimits())
}

// UnmarshalBinaryLimited is UnmarshalBinary with a caller-supplied decode
// budget. Every length prefix — the two header strings and the embedded log
// blob — is validated against the bytes actually remaining before its buffer
// is allocated, and the blob's recording parse inherits the same budget.
func (c *Checkpoint) UnmarshalBinaryLimited(data []byte, lim wire.DecodeLimits) error {
	corrupt := func(what string) error {
		return fmt.Errorf("ckpt: %s: %w", what, grterr.ErrCheckpointCorrupt)
	}
	budget := lim.Budget()
	r := bytes.NewReader(data)
	rd := func(v any) bool { return binary.Read(r, binary.LittleEndian, v) == nil }
	var strErr error
	rds := func(s *string) bool {
		var n uint16
		if !rd(&n) {
			return false
		}
		if int(n) > r.Len() {
			return false
		}
		if err := budget.String("checkpoint string", int(n)); err != nil {
			strErr = err
			return false
		}
		b := make([]byte, n)
		if _, err := r.Read(b); err != nil || len(b) != int(n) {
			return false
		}
		*s = string(b)
		return true
	}
	var magic uint32
	if !rd(&magic) || magic != ckptMagic {
		return corrupt("bad magic")
	}
	var job, blobLen uint32
	if !rds(&c.SessionID) || !rds(&c.Network) ||
		!rd(&c.ClientSeed) || !rd(&c.Variant) || !rd(&job) ||
		!rd(&c.SyncOutFP) || !rd(&c.SyncInFP) || !rd(&c.HistorySigs) ||
		!rd(&blobLen) {
		if strErr != nil {
			return corrupt(strErr.Error())
		}
		return corrupt("truncated header")
	}
	c.Job = int(job)
	if int64(blobLen) > int64(r.Len()) {
		return corrupt("log blob length exceeds input")
	}
	if err := budget.Alloc("checkpoint log blob", int64(blobLen)); err != nil {
		return corrupt(err.Error())
	}
	blob := make([]byte, blobLen)
	if n, err := r.Read(blob); err != nil || n != int(blobLen) {
		return corrupt("truncated log blob")
	}
	var rec trace.Recording
	if err := rec.UnmarshalBinaryLimited(blob, lim); err != nil {
		return corrupt(fmt.Sprintf("log blob: %v", err))
	}
	c.Workload = rec.Workload
	c.ProductID = rec.ProductID
	c.PoolSize = rec.PoolSize
	c.Events = rec.Events
	c.Regions = rec.Regions
	return nil
}

// Seal serializes and authenticates the checkpoint under the session key —
// the same HMAC-SHA256 scheme that seals recordings.
func (c *Checkpoint) Seal(key []byte) (*trace.Signed, error) {
	payload, err := c.MarshalBinary()
	if err != nil {
		return nil, err
	}
	return trace.SignBytes(payload, key)
}

// Open verifies a sealed checkpoint and parses it under the default decode
// limits. Authentication or format failure wraps grterr.ErrCheckpointCorrupt.
func Open(s *trace.Signed, key []byte) (*Checkpoint, error) {
	return OpenLimited(s, key, wire.DefaultLimits())
}

// OpenLimited is Open with a caller-supplied decode budget. The MAC check
// runs first, but passing it does not make the payload's structure
// trustworthy — the parse stays bounded.
func OpenLimited(s *trace.Signed, key []byte, lim wire.DecodeLimits) (*Checkpoint, error) {
	payload, err := trace.VerifyBytes(s, key)
	if err != nil {
		return nil, fmt.Errorf("ckpt: %v: %w", err, grterr.ErrCheckpointCorrupt)
	}
	c := &Checkpoint{}
	if err := c.UnmarshalBinaryLimited(payload, lim); err != nil {
		return nil, err
	}
	return c, nil
}

// Matches checks the checkpoint is resumable for the given workload and GPU.
func (c *Checkpoint) Matches(workload string, productID uint32) error {
	if c.Workload != workload {
		return fmt.Errorf("ckpt: checkpoint is for workload %q, not %q: %w",
			c.Workload, workload, grterr.ErrCheckpointCorrupt)
	}
	if c.ProductID != productID {
		return fmt.Errorf("ckpt: checkpoint bound to GPU product %#x, not %#x: %w",
			c.ProductID, productID, grterr.ErrSKUMismatch)
	}
	if len(c.Events) == 0 {
		return fmt.Errorf("ckpt: checkpoint holds no events: %w", grterr.ErrCheckpointCorrupt)
	}
	// Every completed job contributes at least one event to the log, so a
	// job index past the event count cannot describe a prefix of it.
	if c.Job < 0 || c.Job > len(c.Events) {
		return fmt.Errorf("ckpt: job index %d inconsistent with %d-event log: %w",
			c.Job, len(c.Events), grterr.ErrCheckpointCorrupt)
	}
	return nil
}
