package ckpt

import (
	"errors"
	"testing"

	"gpurelay/internal/grterr"
	"gpurelay/internal/trace"
)

// sampleChain builds a three-epoch chain: a base epoch carrying the region
// map, a delta epoch inheriting it, and a delta epoch replacing it (the
// region map changed at that boundary).
func sampleChain(t *testing.T) *Chain {
	t.Helper()
	hdr := Epoch{
		SessionID:  "phone/MNIST/00000000009e3779",
		Workload:   "MNIST",
		ProductID:  0x6221,
		PoolSize:   1 << 20,
		ClientSeed: 0x9e3779,
		Variant:    3,
		Network:    "wifi",
	}
	regions := []trace.RegionInfo{
		{Name: "weights.0", Kind: 1, VA: 0x8000_0000, PA: 0x1000, Size: 4096},
		{Name: "input", Kind: 2, VA: 0x8001_0000, PA: 0x2000, Size: 3136},
	}
	grown := append(append([]trace.RegionInfo(nil), regions...),
		trace.RegionInfo{Name: "scratch", Kind: 3, VA: 0x8002_0000, PA: 0x3000, Size: 8192})
	ev := func(n int, base uint32) []trace.Event {
		out := make([]trace.Event, n)
		for i := range out {
			out[i] = trace.Event{Kind: trace.KWrite, Fn: "reg_write",
				Reg: 0x1000, Value: base + uint32(i)}
		}
		return out
	}

	base := hdr
	base.Seq = 0
	base.Job = 0
	base.Events = ev(4, 100)
	base.Regions = regions
	base.SyncOutFP, base.SyncInFP, base.HistorySigs = 11, 12, 1

	ch := &Chain{}
	if err := ch.Append(&base); err != nil {
		t.Fatalf("append base: %v", err)
	}

	mid := hdr
	mid.Seq = 1
	mid.Job = 1
	mid.StartEvent = 4
	mid.Events = ev(3, 200)
	mid.Regions = nil // inherit
	mid.SyncOutFP, mid.SyncInFP, mid.HistorySigs = 21, 22, 2
	fp, err := base.Fingerprint()
	if err != nil {
		t.Fatal(err)
	}
	mid.Parent = fp
	if err := ch.Append(&mid); err != nil {
		t.Fatalf("append mid: %v", err)
	}

	tip := hdr
	tip.Seq = 2
	tip.Job = 3
	tip.StartEvent = 7
	tip.Events = ev(5, 300)
	tip.Regions = grown
	tip.SyncOutFP, tip.SyncInFP, tip.HistorySigs = 31, 32, 3
	if fp, err = mid.Fingerprint(); err != nil {
		t.Fatal(err)
	}
	tip.Parent = fp
	if err := ch.Append(&tip); err != nil {
		t.Fatalf("append tip: %v", err)
	}
	return ch
}

func TestEpochMarshalRoundTrip(t *testing.T) {
	ch := sampleChain(t)
	for i, e := range ch.Epochs {
		data, err := e.MarshalBinary()
		if err != nil {
			t.Fatalf("epoch %d: %v", i, err)
		}
		var got Epoch
		if err := got.UnmarshalBinary(data); err != nil {
			t.Fatalf("epoch %d: %v", i, err)
		}
		if got.SessionID != e.SessionID || got.Workload != e.Workload ||
			got.ProductID != e.ProductID || got.PoolSize != e.PoolSize ||
			got.ClientSeed != e.ClientSeed || got.Variant != e.Variant ||
			got.Network != e.Network || got.Seq != e.Seq || got.Parent != e.Parent ||
			got.Job != e.Job || got.StartEvent != e.StartEvent ||
			got.SyncOutFP != e.SyncOutFP || got.SyncInFP != e.SyncInFP ||
			got.HistorySigs != e.HistorySigs {
			t.Fatalf("epoch %d scalar fields differ:\ngot  %+v\nwant %+v", i, got, *e)
		}
		if len(got.Events) != len(e.Events) {
			t.Fatalf("epoch %d events: %d vs %d", i, len(got.Events), len(e.Events))
		}
		for j := range got.Events {
			if !got.Events[j].Equal(&e.Events[j]) {
				t.Fatalf("epoch %d event %d differs", i, j)
			}
		}
		// The inherit flag must round-trip exactly: nil stays nil, a carried
		// map stays a map.
		if (got.Regions == nil) != (e.Regions == nil) {
			t.Fatalf("epoch %d inherit flag lost: got %v regions, want %v",
				i, got.Regions, e.Regions)
		}
		if len(got.Regions) != len(e.Regions) {
			t.Fatalf("epoch %d regions: %d vs %d", i, len(got.Regions), len(e.Regions))
		}
	}
}

func TestEpochSealOpenAndTamper(t *testing.T) {
	ch := sampleChain(t)
	key := []byte("epoch-test-session-key-000000001")
	e := ch.Epochs[1]
	signed, err := e.Seal(key)
	if err != nil {
		t.Fatal(err)
	}
	got, err := OpenEpoch(signed, key)
	if err != nil {
		t.Fatal(err)
	}
	if got.Seq != e.Seq || got.Parent != e.Parent || got.StartEvent != e.StartEvent {
		t.Fatalf("opened epoch differs: %+v vs %+v", got, *e)
	}

	tampered := *signed
	tampered.Payload = append([]byte(nil), signed.Payload...)
	tampered.Payload[len(tampered.Payload)/2] ^= 0x01
	if _, err := OpenEpoch(&tampered, key); !errors.Is(err, grterr.ErrCheckpointCorrupt) {
		t.Fatalf("tampered payload: err = %v, want ErrCheckpointCorrupt", err)
	}
	wrongKey := append([]byte(nil), key...)
	wrongKey[0] ^= 0x01
	if _, err := OpenEpoch(signed, wrongKey); !errors.Is(err, grterr.ErrCheckpointCorrupt) {
		t.Fatalf("wrong key: err = %v, want ErrCheckpointCorrupt", err)
	}
	if err := new(Epoch).UnmarshalBinary([]byte("GRTX garbage")); !errors.Is(err, grterr.ErrCheckpointCorrupt) {
		t.Fatalf("bad magic: err = %v, want ErrCheckpointCorrupt", err)
	}
}

// TestChainAppendViolations drives every linkage check: wrong base shape,
// gaps in the sequence, offset mismatch, stalled job index, wrong parent
// fingerprint, diverging session header.
func TestChainAppendViolations(t *testing.T) {
	ch := sampleChain(t)
	tip := ch.Tip()
	tipFP, err := tip.Fingerprint()
	if err != nil {
		t.Fatal(err)
	}
	nextOff := tip.StartEvent + len(tip.Events)
	good := func() *Epoch {
		e := &Epoch{
			SessionID: tip.SessionID, Workload: tip.Workload,
			ProductID: tip.ProductID, PoolSize: tip.PoolSize,
			ClientSeed: tip.ClientSeed, Variant: tip.Variant, Network: tip.Network,
			Seq: tip.Seq + 1, Parent: tipFP, Job: tip.Job + 1, StartEvent: nextOff,
			Events: []trace.Event{{Kind: trace.KIRQ, IRQJob: 1}},
		}
		return e
	}
	// The good continuation must be accepted (checked on a copy of the chain).
	cp := &Chain{Epochs: append([]*Epoch(nil), ch.Epochs...)}
	if err := cp.Append(good()); err != nil {
		t.Fatalf("valid continuation rejected: %v", err)
	}

	cases := []struct {
		name string
		mut  func(*Epoch)
	}{
		{"seq gap", func(e *Epoch) { e.Seq++ }},
		{"offset mismatch", func(e *Epoch) { e.StartEvent++ }},
		{"job stall", func(e *Epoch) { e.Job = tip.Job }},
		{"parent mismatch", func(e *Epoch) { e.Parent[0] ^= 0x01 }},
		{"session divergence", func(e *Epoch) { e.ClientSeed++ }},
	}
	for _, tc := range cases {
		e := good()
		tc.mut(e)
		cp := &Chain{Epochs: append([]*Epoch(nil), ch.Epochs...)}
		if err := cp.Append(e); !errors.Is(err, grterr.ErrCheckpointCorrupt) {
			t.Errorf("%s: err = %v, want ErrCheckpointCorrupt", tc.name, err)
		}
	}

	baseCases := []struct {
		name string
		mut  func(*Epoch)
	}{
		{"base with seq", func(e *Epoch) { e.Seq = 1 }},
		{"base with offset", func(e *Epoch) { e.StartEvent = 4 }},
		{"base with parent", func(e *Epoch) { e.Parent[0] = 1 }},
		{"base inheriting regions", func(e *Epoch) { e.Regions = nil }},
		{"base without events", func(e *Epoch) { e.Events = nil }},
	}
	for _, tc := range baseCases {
		e := &Epoch{
			SessionID: "s", Workload: "w",
			Events:  []trace.Event{{Kind: trace.KIRQ, IRQJob: 1}},
			Regions: []trace.RegionInfo{{Name: "r", Size: 64}},
		}
		tc.mut(e)
		if err := new(Chain).Append(e); !errors.Is(err, grterr.ErrCheckpointCorrupt) {
			t.Errorf("%s: err = %v, want ErrCheckpointCorrupt", tc.name, err)
		}
	}
}

// TestChainStitch checks the reconstruction: events concatenate in order,
// the region map comes from the newest epoch that carried one, and the
// boundary metadata comes from the tip — and the result survives the
// ordinary Checkpoint seal round trip.
func TestChainStitch(t *testing.T) {
	ch := sampleChain(t)
	cp, err := ch.Stitch()
	if err != nil {
		t.Fatal(err)
	}
	tip := ch.Tip()
	wantEvents := 0
	for _, e := range ch.Epochs {
		wantEvents += len(e.Events)
	}
	if len(cp.Events) != wantEvents {
		t.Fatalf("stitched %d events, want %d", len(cp.Events), wantEvents)
	}
	off := 0
	for _, e := range ch.Epochs {
		for j := range e.Events {
			if !cp.Events[off].Equal(&e.Events[j]) {
				t.Fatalf("stitched event %d differs from epoch %d event %d", off, e.Seq, j)
			}
			off++
		}
	}
	if len(cp.Regions) != len(tip.Regions) {
		t.Fatalf("stitched %d regions, want the tip's %d (newest map wins)",
			len(cp.Regions), len(tip.Regions))
	}
	if cp.Job != tip.Job || cp.SyncOutFP != tip.SyncOutFP ||
		cp.SyncInFP != tip.SyncInFP || cp.HistorySigs != tip.HistorySigs {
		t.Fatal("stitched boundary metadata does not come from the tip")
	}

	key := []byte("epoch-test-session-key-000000001")
	signed, err := cp.Seal(key)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Open(signed, key); err != nil {
		t.Fatalf("stitched checkpoint fails the checkpoint path: %v", err)
	}

	if _, err := new(Chain).Stitch(); !errors.Is(err, grterr.ErrCheckpointCorrupt) {
		t.Fatalf("empty chain stitch: err = %v, want ErrCheckpointCorrupt", err)
	}
}

// TestChainSealedRoundTrip rebuilds a chain from sealed epochs — the resume
// path a process restart takes: every link is opened (seal verified),
// re-appended (linkage re-validated from the wire bytes), and the stitched
// result matches the original chain's.
func TestChainSealedRoundTrip(t *testing.T) {
	ch := sampleChain(t)
	key := []byte("epoch-test-session-key-000000001")
	rebuilt := &Chain{}
	for _, e := range ch.Epochs {
		signed, err := e.Seal(key)
		if err != nil {
			t.Fatal(err)
		}
		got, err := OpenEpoch(signed, key)
		if err != nil {
			t.Fatal(err)
		}
		if err := rebuilt.Append(got); err != nil {
			t.Fatalf("re-appending epoch %d from the wire: %v", e.Seq, err)
		}
	}
	want, err := ch.Stitch()
	if err != nil {
		t.Fatal(err)
	}
	got, err := rebuilt.Stitch()
	if err != nil {
		t.Fatal(err)
	}
	wb, err := want.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	gb, err := got.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	if string(wb) != string(gb) {
		t.Fatal("stitched checkpoint from sealed epochs differs from the original chain's")
	}
}
