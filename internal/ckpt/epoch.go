package ckpt

// Epoch-chained incremental checkpoints (DESIGN.md §14). A full Checkpoint
// re-serializes the whole interaction log at every job boundary, so its cost
// scales with the footprint of the session, not with what changed. An Epoch
// instead captures only the delta since its parent — the events appended
// since the previous epoch, the current memsync fingerprints, and the region
// map only when it structurally changed — and is chained to the parent by a
// SHA-256 fingerprint of the parent's serialized payload. Restore stitches
// the chain back into an ordinary Checkpoint, so the resume path (log-prefix
// replay + boundary fingerprint validation) is unchanged.

import (
	"bytes"
	"crypto/sha256"
	"encoding/binary"
	"fmt"

	"gpurelay/internal/grterr"
	"gpurelay/internal/trace"
	"gpurelay/internal/wire"
)

// epochMagic is "GRTE" little-endian.
const epochMagic uint32 = 0x45545247

// Epoch is one link of an incremental checkpoint chain. The session header
// (SessionID through Network) is repeated on every epoch so any link can be
// validated against its session without the rest of the chain in hand.
type Epoch struct {
	// Session pinning, exactly as on Checkpoint.
	SessionID  string
	Workload   string
	ProductID  uint32
	PoolSize   uint64
	ClientSeed uint64
	Variant    uint8
	Network    string

	// Seq is the epoch's position in its chain; 0 is the base (full) epoch.
	Seq uint32
	// Parent is the SHA-256 fingerprint of the parent epoch's serialized
	// payload; all-zero for the base epoch. The chain is tamper-evident on
	// top of each epoch's own HMAC seal: reordering, dropping, or splicing
	// epochs breaks the fingerprint linkage.
	Parent [32]byte
	// Job is the 0-based index of the last fully completed job this epoch
	// describes (the boundary it was staged at).
	Job int
	// StartEvent is the log offset of Events[0]: the number of events the
	// chain's earlier epochs already carry.
	StartEvent int
	// Events is the interaction-log delta appended since the parent epoch.
	Events []trace.Event
	// Regions is the region map at the boundary, or nil to inherit the
	// nearest ancestor's — the steady-state case, where the map stopped
	// changing after model build-up.
	Regions []trace.RegionInfo
	// SyncOutFP/SyncInFP fingerprint the memsync delta-encoder metastate at
	// the boundary (same definition as Checkpoint's).
	SyncOutFP uint64
	SyncInFP  uint64
	// HistorySigs counts speculation-history signatures at the boundary.
	HistorySigs uint32

	// fp caches the serialized-payload fingerprint; an Epoch must not be
	// mutated after Fingerprint or MarshalBinary has been called.
	fp      [32]byte
	fpValid bool
}

// MarshalBinary serializes the epoch. The event delta and region map ride in
// an embedded trace.Recording blob, reusing the recording wire format like
// Checkpoint does.
func (e *Epoch) MarshalBinary() ([]byte, error) {
	rec := trace.Recording{
		Workload:  e.Workload,
		ProductID: e.ProductID,
		PoolSize:  e.PoolSize,
		Events:    e.Events,
		Regions:   e.Regions,
	}
	blob, err := rec.MarshalBinary()
	if err != nil {
		return nil, fmt.Errorf("ckpt: marshal epoch delta: %w", err)
	}
	inherit := byte(0)
	if e.Regions == nil {
		inherit = 1
	}
	le := binary.LittleEndian
	out := make([]byte, 4+2+len(e.SessionID)+2+len(e.Network)+8+1+4+32+4+4+1+8+8+4+4+len(blob))
	off := 0
	pu32 := func(v uint32) { le.PutUint32(out[off:], v); off += 4 }
	pu64 := func(v uint64) { le.PutUint64(out[off:], v); off += 8 }
	ps := func(s string) {
		le.PutUint16(out[off:], uint16(len(s)))
		off += 2
		off += copy(out[off:], s)
	}
	pu32(epochMagic)
	ps(e.SessionID)
	ps(e.Network)
	pu64(e.ClientSeed)
	out[off] = e.Variant
	off++
	pu32(e.Seq)
	off += copy(out[off:], e.Parent[:])
	pu32(uint32(e.Job))
	pu32(uint32(e.StartEvent))
	out[off] = inherit
	off++
	pu64(e.SyncOutFP)
	pu64(e.SyncInFP)
	pu32(e.HistorySigs)
	pu32(uint32(len(blob)))
	copy(out[off:], blob)
	return out, nil
}

// Fingerprint returns the SHA-256 of the epoch's serialized payload — the
// value a child epoch carries as Parent. It is cached after the first call;
// the epoch must not be mutated afterwards.
func (e *Epoch) Fingerprint() ([32]byte, error) {
	if e.fpValid {
		return e.fp, nil
	}
	payload, err := e.MarshalBinary()
	if err != nil {
		return [32]byte{}, err
	}
	e.fp = sha256.Sum256(payload)
	e.fpValid = true
	return e.fp, nil
}

// UnmarshalBinary parses an epoch under the default decode limits.
// Corruption wraps grterr.ErrCheckpointCorrupt.
func (e *Epoch) UnmarshalBinary(data []byte) error {
	return e.UnmarshalBinaryLimited(data, wire.DefaultLimits())
}

// UnmarshalBinaryLimited is UnmarshalBinary with a caller-supplied decode
// budget, mirroring Checkpoint.UnmarshalBinaryLimited: every length prefix
// is validated against the bytes remaining before its buffer is allocated.
func (e *Epoch) UnmarshalBinaryLimited(data []byte, lim wire.DecodeLimits) error {
	corrupt := func(what string) error {
		return fmt.Errorf("ckpt: epoch %s: %w", what, grterr.ErrCheckpointCorrupt)
	}
	budget := lim.Budget()
	r := bytes.NewReader(data)
	rd := func(v any) bool { return binary.Read(r, binary.LittleEndian, v) == nil }
	var strErr error
	rds := func(s *string) bool {
		var n uint16
		if !rd(&n) {
			return false
		}
		if int(n) > r.Len() {
			return false
		}
		if err := budget.String("epoch string", int(n)); err != nil {
			strErr = err
			return false
		}
		b := make([]byte, n)
		if _, err := r.Read(b); err != nil || len(b) != int(n) {
			return false
		}
		*s = string(b)
		return true
	}
	var magic uint32
	if !rd(&magic) || magic != epochMagic {
		return corrupt("bad magic")
	}
	var job, startEvent, blobLen uint32
	var inherit uint8
	if !rds(&e.SessionID) || !rds(&e.Network) ||
		!rd(&e.ClientSeed) || !rd(&e.Variant) || !rd(&e.Seq) ||
		!rd(&e.Parent) || !rd(&job) || !rd(&startEvent) || !rd(&inherit) ||
		!rd(&e.SyncOutFP) || !rd(&e.SyncInFP) || !rd(&e.HistorySigs) ||
		!rd(&blobLen) {
		if strErr != nil {
			return corrupt(strErr.Error())
		}
		return corrupt("truncated header")
	}
	e.Job = int(job)
	e.StartEvent = int(startEvent)
	if int64(blobLen) > int64(r.Len()) {
		return corrupt("delta blob length exceeds input")
	}
	if err := budget.Alloc("epoch delta blob", int64(blobLen)); err != nil {
		return corrupt(err.Error())
	}
	blob := make([]byte, blobLen)
	if n, err := r.Read(blob); err != nil || n != int(blobLen) {
		return corrupt("truncated delta blob")
	}
	var rec trace.Recording
	if err := rec.UnmarshalBinaryLimited(blob, lim); err != nil {
		return corrupt(fmt.Sprintf("delta blob: %v", err))
	}
	e.Workload = rec.Workload
	e.ProductID = rec.ProductID
	e.PoolSize = rec.PoolSize
	e.Events = rec.Events
	if inherit != 0 {
		if len(rec.Regions) != 0 {
			return corrupt("inherit flag set but regions present")
		}
		e.Regions = nil
	} else {
		e.Regions = rec.Regions
	}
	e.fpValid = false
	return nil
}

// Seal serializes and authenticates the epoch under the session key, the
// same HMAC-SHA256 scheme that seals checkpoints and recordings. Cost is
// proportional to the epoch's delta, not the session.
func (e *Epoch) Seal(key []byte) (*trace.Signed, error) {
	payload, err := e.MarshalBinary()
	if err != nil {
		return nil, err
	}
	return trace.SignBytes(payload, key)
}

// OpenEpoch verifies a sealed epoch and parses it under the default decode
// limits. Authentication or format failure wraps grterr.ErrCheckpointCorrupt.
func OpenEpoch(s *trace.Signed, key []byte) (*Epoch, error) {
	return OpenEpochLimited(s, key, wire.DefaultLimits())
}

// OpenEpochLimited is OpenEpoch with a caller-supplied decode budget.
func OpenEpochLimited(s *trace.Signed, key []byte, lim wire.DecodeLimits) (*Epoch, error) {
	payload, err := trace.VerifyBytes(s, key)
	if err != nil {
		return nil, fmt.Errorf("ckpt: epoch %v: %w", err, grterr.ErrCheckpointCorrupt)
	}
	e := &Epoch{}
	if err := e.UnmarshalBinaryLimited(payload, lim); err != nil {
		return nil, err
	}
	return e, nil
}

// Chain accumulates the epochs of one session in order. Append validates
// the fingerprint linkage and session pinning of every link, so a stitched
// chain is structurally sound by construction.
type Chain struct {
	Epochs []*Epoch
}

// Tip returns the newest epoch (nil for an empty chain).
func (ch *Chain) Tip() *Epoch {
	if len(ch.Epochs) == 0 {
		return nil
	}
	return ch.Epochs[len(ch.Epochs)-1]
}

// Append validates e against the chain tip and appends it. The base epoch
// must carry seq 0, start offset 0, a zero parent fingerprint, and its own
// region map; every later epoch must continue the sequence, start exactly
// where the chain ends, carry its parent's fingerprint, and describe the
// same session. Violations wrap grterr.ErrCheckpointCorrupt.
func (ch *Chain) Append(e *Epoch) error {
	corrupt := func(format string, args ...any) error {
		return fmt.Errorf("ckpt: chain: "+format+": %w",
			append(args, grterr.ErrCheckpointCorrupt)...)
	}
	tip := ch.Tip()
	if tip == nil {
		if e.Seq != 0 {
			return corrupt("base epoch has seq %d", e.Seq)
		}
		if e.StartEvent != 0 {
			return corrupt("base epoch starts at event %d", e.StartEvent)
		}
		if e.Parent != ([32]byte{}) {
			return corrupt("base epoch has a parent fingerprint")
		}
		if e.Regions == nil {
			return corrupt("base epoch inherits regions with no ancestor")
		}
		if len(e.Events) == 0 {
			return corrupt("base epoch holds no events")
		}
		ch.Epochs = append(ch.Epochs, e)
		return nil
	}
	if e.Seq != tip.Seq+1 {
		return corrupt("epoch seq %d does not follow %d", e.Seq, tip.Seq)
	}
	if e.SessionID != tip.SessionID || e.Workload != tip.Workload ||
		e.ProductID != tip.ProductID || e.PoolSize != tip.PoolSize ||
		e.ClientSeed != tip.ClientSeed || e.Variant != tip.Variant ||
		e.Network != tip.Network {
		return corrupt("epoch %d describes a different session", e.Seq)
	}
	if want := tip.StartEvent + len(tip.Events); e.StartEvent != want {
		return corrupt("epoch %d starts at event %d, chain ends at %d",
			e.Seq, e.StartEvent, want)
	}
	if e.Job <= tip.Job {
		return corrupt("epoch %d job %d does not advance past %d", e.Seq, e.Job, tip.Job)
	}
	parentFP, err := tip.Fingerprint()
	if err != nil {
		return err
	}
	if e.Parent != parentFP {
		return corrupt("epoch %d parent fingerprint mismatch", e.Seq)
	}
	ch.Epochs = append(ch.Epochs, e)
	return nil
}

// Stitch reconstructs the full Checkpoint the chain describes: events
// concatenated in order, the region map from the newest epoch that carried
// one, and the boundary metadata from the tip. The result resumes through
// the ordinary Checkpoint path.
func (ch *Chain) Stitch() (*Checkpoint, error) {
	tip := ch.Tip()
	if tip == nil {
		return nil, fmt.Errorf("ckpt: chain: stitching an empty chain: %w",
			grterr.ErrCheckpointCorrupt)
	}
	total := tip.StartEvent + len(tip.Events)
	events := make([]trace.Event, 0, total)
	var regions []trace.RegionInfo
	for _, e := range ch.Epochs {
		events = append(events, e.Events...)
		if e.Regions != nil {
			regions = e.Regions
		}
	}
	return &Checkpoint{
		SessionID:   tip.SessionID,
		Workload:    tip.Workload,
		ProductID:   tip.ProductID,
		PoolSize:    tip.PoolSize,
		ClientSeed:  tip.ClientSeed,
		Variant:     tip.Variant,
		Network:     tip.Network,
		Job:         tip.Job,
		Events:      events,
		Regions:     regions,
		SyncOutFP:   tip.SyncOutFP,
		SyncInFP:    tip.SyncInFP,
		HistorySigs: tip.HistorySigs,
	}, nil
}
