package experiments

import (
	"fmt"
	"strings"
	"time"

	"gpurelay/internal/netsim"
	"gpurelay/internal/obs"
	"gpurelay/internal/record"
	"gpurelay/internal/shim"
)

// This file reproduces the §7.3 "validation of key designs" experiments.

// DeferralRow quantifies register-access deferral for one model.
type DeferralRow struct {
	Model string
	// DelayReductionPct is OursM→OursMD (paper: 65% WiFi, 69% cellular).
	DelayReductionPct float64
	// RTTReductionPct is the blocking-round-trip reduction (paper: 73%).
	RTTReductionPct float64
	// AccessesPerCommit is the §7.3 batching statistic (paper: 3.8).
	AccessesPerCommit float64
}

// DeferralEfficacy measures §7.3 "Efficacy of deferral" under cond.
func (s *Suite) DeferralEfficacy(cond netsim.Condition) ([]DeferralRow, error) {
	var rows []DeferralRow
	for _, m := range s.Models {
		base, err := s.Record(m.Name, record.OursM, cond)
		if err != nil {
			return nil, err
		}
		def, err := s.Record(m.Name, record.OursMD, cond)
		if err != nil {
			return nil, err
		}
		blocking := func(r *record.Result) float64 {
			return float64(r.Stats.Obs.Counter(obs.MNetRTTs, obs.L("mode", "blocking")))
		}
		rows = append(rows, DeferralRow{
			Model: m.Name,
			DelayReductionPct: 100 * (1 - def.Stats.RecordingDelay.Seconds()/
				base.Stats.RecordingDelay.Seconds()),
			RTTReductionPct:   100 * (1 - blocking(def)/blocking(base)),
			AccessesPerCommit: def.Stats.RegAccessesPerCommit,
		})
	}
	return rows, nil
}

// SpeculationRow quantifies speculation for one model.
type SpeculationRow struct {
	Model string
	// DelayReductionPct is OursMD→OursMDS (paper: 60-74%).
	DelayReductionPct float64
	// RTTReductionPct is the further blocking-RTT reduction (paper: 86%
	// on average vs OursM... measured here vs OursMD).
	RTTReductionPct float64
	// CommitsSpeculatedPct is the fraction of commits meeting the
	// criteria (paper: 95%).
	CommitsSpeculatedPct float64
	Mispredictions       int
}

// SpeculationEfficacy measures §7.3 "Efficacy of speculation" under cond,
// with history retained across the benchmarks (as the paper does).
func (s *Suite) SpeculationEfficacy(cond netsim.Condition) ([]SpeculationRow, error) {
	var rows []SpeculationRow
	for _, m := range s.Models {
		def, err := s.Record(m.Name, record.OursMD, cond)
		if err != nil {
			return nil, err
		}
		spec, err := s.Record(m.Name, record.OursMDS, cond)
		if err != nil {
			return nil, err
		}
		snap := spec.Stats.Obs
		rows = append(rows, SpeculationRow{
			Model: m.Name,
			DelayReductionPct: 100 * (1 - spec.Stats.RecordingDelay.Seconds()/
				def.Stats.RecordingDelay.Seconds()),
			RTTReductionPct: 100 * (1 -
				float64(snap.Counter(obs.MNetRTTs, obs.L("mode", "blocking")))/
					float64(def.Stats.Obs.Counter(obs.MNetRTTs, obs.L("mode", "blocking")))),
			CommitsSpeculatedPct: 100 * float64(snap.Counter(obs.MShimCommits, obs.L("kind", "async"))) /
				float64(snap.CounterTotal(obs.MShimCommits)),
			Mispredictions: int(snap.Counter(obs.MShimMispredictions)),
		})
	}
	return rows, nil
}

// MispredictionRow is one §7.3 fault-injection measurement.
type MispredictionRow struct {
	Model        string
	Detected     bool
	RecoveryTime time.Duration
}

// MispredictionCost injects a wrong register value into a warm record run of
// each model and reports the rollback delay (paper: 1 s MNIST, 3 s VGG16;
// always detected).
func (s *Suite) MispredictionCost(models ...string) ([]MispredictionRow, error) {
	if len(models) == 0 {
		models = []string{"MNIST", "VGG16"}
	}
	var rows []MispredictionRow
	for _, name := range models {
		// Warm the (suite-shared) history first.
		if _, err := s.Record(name, record.OursMDS, netsim.WiFi); err != nil {
			return nil, err
		}
		res, err := record.Run(record.Config{
			Variant: record.OursMDS, Model: s.model(name), SKU: s.SKU,
			Network: netsim.WiFi, SessionKey: sessionKey, History: s.history,
			ClientSeed: 77, InjectMispredictionAt: 10,
		})
		if err != nil {
			return nil, err
		}
		rows = append(rows, MispredictionRow{
			Model:        name,
			Detected:     res.Stats.Shim.Mispredictions > 0,
			RecoveryTime: res.Stats.Shim.RecoveryTime,
		})
	}
	return rows, nil
}

// PollingRow quantifies polling-loop offloading for one model.
type PollingRow struct {
	Model string
	// Instances is the number of polling-loop executions (paper: 117
	// MNIST to 492 VGG16).
	Instances int
	// RTTsWithout is the round trips the loops would cost one-per-read.
	RTTsWithout int
	// RTTsSaved is the reduction from offloading (paper: 13-58 saved per
	// benchmark beyond deferral's batching).
	RTTsSaved int
}

// PollingOffload measures §4.3's effect by comparing loop iterations
// executed client-side against the single round trip each offloaded loop
// costs.
func (s *Suite) PollingOffload() ([]PollingRow, error) {
	var rows []PollingRow
	for _, m := range s.Models {
		res, err := s.Record(m.Name, record.OursMD, netsim.WiFi)
		if err != nil {
			return nil, err
		}
		snap := res.Stats.Obs
		offloaded := snap.Counter(obs.MShimPollLoops, obs.L("offloaded", "true"))
		saved := snap.Counter(obs.MShimPollRTTsSaved)
		rows = append(rows, PollingRow{
			Model:       m.Name,
			Instances:   int(snap.CounterTotal(obs.MShimPollLoops)),
			RTTsWithout: int(offloaded + saved),
			RTTsSaved:   int(saved),
		})
	}
	return rows, nil
}

// AblationRow compares a full OursMDS run against one with a shim feature
// knocked out, for the DESIGN.md ablation benches.
type AblationRow struct {
	Model           string
	FullDelay       time.Duration
	NoHistoryDelay  time.Duration // fresh history: speculation must warm up
	ColdHistoryCost float64       // percent slower without cross-run history
}

// HistoryAblation quantifies how much cross-workload history retention
// (§4.2/§7.3) buys: an OursMDS run with a cold, per-run history versus the
// suite's warm shared history.
func (s *Suite) HistoryAblation() ([]AblationRow, error) {
	var rows []AblationRow
	for _, m := range s.Models {
		warm, err := s.Record(m.Name, record.OursMDS, netsim.WiFi)
		if err != nil {
			return nil, err
		}
		cold, err := record.Run(record.Config{
			Variant: record.OursMDS, Model: s.model(m.Name), SKU: s.SKU,
			Network: netsim.WiFi, SessionKey: sessionKey,
			History:    shim.NewHistory(3), // cold
			ClientSeed: 42, InjectMispredictionAt: -1,
		})
		if err != nil {
			return nil, err
		}
		row := AblationRow{
			Model: m.Name, FullDelay: warm.Stats.RecordingDelay,
			NoHistoryDelay: cold.Stats.RecordingDelay,
		}
		row.ColdHistoryCost = 100 * (cold.Stats.RecordingDelay.Seconds()/
			warm.Stats.RecordingDelay.Seconds() - 1)
		rows = append(rows, row)
	}
	return rows, nil
}

// KSweepRow measures one confidence threshold in the speculation-criteria
// sweep.
type KSweepRow struct {
	K              int
	Delay          time.Duration
	Speculated     int
	Mispredictions int
	RecoveryTime   time.Duration
}

// KSweep ablates the §4.2 confidence parameter k (the paper fixes k=3): it
// records the model once per k with a fresh history warmed by one prior run.
// Low k speculates aggressively and mispredicts on the nondeterministic
// flush-ID commits (paying seconds of rollback each time); high k forfeits
// speculation opportunities. k=3 is the paper's sweet spot.
func (s *Suite) KSweep(model string, ks ...int) ([]KSweepRow, error) {
	if len(ks) == 0 {
		ks = []int{1, 2, 3, 5}
	}
	var rows []KSweepRow
	for _, k := range ks {
		hist := shim.NewHistory(k)
		// Warm-up run builds history at this k.
		if _, err := record.Run(record.Config{
			Variant: record.OursMDS, Model: s.model(model), SKU: s.SKU,
			Network: netsim.WiFi, SessionKey: sessionKey, History: hist,
			ClientSeed: 11, InjectMispredictionAt: -1,
		}); err != nil {
			return nil, err
		}
		res, err := record.Run(record.Config{
			Variant: record.OursMDS, Model: s.model(model), SKU: s.SKU,
			Network: netsim.WiFi, SessionKey: sessionKey, History: hist,
			ClientSeed: 12, InjectMispredictionAt: -1,
		})
		if err != nil {
			return nil, err
		}
		rows = append(rows, KSweepRow{
			K: k, Delay: res.Stats.RecordingDelay,
			Speculated:     res.Stats.Shim.AsyncCommits,
			Mispredictions: res.Stats.Shim.Mispredictions,
			RecoveryTime:   res.Stats.Shim.RecoveryTime,
		})
	}
	return rows, nil
}

// RenderKSweep formats the k-sweep ablation.
func RenderKSweep(model string, rows []KSweepRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Ablation: speculation confidence k (%s; paper uses k=3)\n", model)
	fmt.Fprintf(&b, "%4s %10s %12s %10s %10s\n", "k", "delay", "speculated", "mispred", "rollback")
	for _, r := range rows {
		fmt.Fprintf(&b, "%4d %9.1fs %12d %10d %9.1fs\n",
			r.K, r.Delay.Seconds(), r.Speculated, r.Mispredictions, r.RecoveryTime.Seconds())
	}
	return b.String()
}

// RTTSweepRow measures recording delay under one synthetic RTT.
type RTTSweepRow struct {
	RTT    time.Duration
	Delays map[record.Variant]time.Duration
}

// RTTSweep records a model under a range of round-trip times (at WiFi
// bandwidth) for all four variants. It quantifies the paper's central claim:
// the optimizations make recording delay nearly insensitive to network
// latency, while the naive recorder's delay grows linearly with RTT.
func (s *Suite) RTTSweep(model string, rtts ...time.Duration) ([]RTTSweepRow, error) {
	if len(rtts) == 0 {
		rtts = []time.Duration{5 * time.Millisecond, 20 * time.Millisecond,
			50 * time.Millisecond, 100 * time.Millisecond}
	}
	var rows []RTTSweepRow
	for _, rtt := range rtts {
		cond := netsim.Condition{
			Name: fmt.Sprintf("rtt-%dms", rtt.Milliseconds()),
			RTT:  rtt, Bandwidth: netsim.WiFi.Bandwidth,
		}
		row := RTTSweepRow{RTT: rtt, Delays: map[record.Variant]time.Duration{}}
		for _, v := range record.Variants {
			res, err := s.Record(model, v, cond)
			if err != nil {
				return nil, err
			}
			row.Delays[v] = res.Stats.RecordingDelay
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// RenderRTTSweep formats the RTT sweep.
func RenderRTTSweep(model string, rows []RTTSweepRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Ablation: recording delay vs network RTT (%s)\n", model)
	fmt.Fprintf(&b, "%8s %10s %10s %10s %10s\n", "RTT", "Naive", "OursM", "OursMD", "OursMDS")
	for _, r := range rows {
		fmt.Fprintf(&b, "%6dms %9.1fs %9.1fs %9.1fs %9.1fs\n", r.RTT.Milliseconds(),
			r.Delays[record.Naive].Seconds(), r.Delays[record.OursM].Seconds(),
			r.Delays[record.OursMD].Seconds(), r.Delays[record.OursMDS].Seconds())
	}
	return b.String()
}

// SegmentationRow measures the Figure 2 composability/efficiency tradeoff
// for one model: per-layer recordings versus one monolithic recording.
type SegmentationRow struct {
	Model string
	// Segments is the number of per-layer recordings.
	Segments int
	// MonolithicBytes and SegmentedBytes compare total recording sizes
	// (segmentation duplicates region maps and signatures).
	MonolithicBytes int64
	SegmentedBytes  int64
	// OverheadPct is the size overhead of per-layer granularity.
	OverheadPct float64
}

// SegmentationTradeoff quantifies Figure 2's "granularity of recordings is a
// developer's choice as the tradeoff between composability and efficiency".
func (s *Suite) SegmentationTradeoff(models ...string) ([]SegmentationRow, error) {
	if len(models) == 0 {
		for _, m := range s.Models {
			models = append(models, m.Name)
		}
	}
	var rows []SegmentationRow
	for _, name := range models {
		res, err := s.Record(name, record.OursMDS, netsim.WiFi)
		if err != nil {
			return nil, err
		}
		if res.Signed == nil {
			return nil, fmt.Errorf("experiments: %s recording was trimmed", name)
		}
		signeds, _, err := res.Segments(s.model(name).LayerBoundaries())
		if err != nil {
			return nil, err
		}
		var segBytes int64
		for _, sg := range signeds {
			segBytes += int64(len(sg.Payload)) + 32
		}
		mono := int64(len(res.Signed.Payload)) + 32
		rows = append(rows, SegmentationRow{
			Model: name, Segments: len(signeds),
			MonolithicBytes: mono, SegmentedBytes: segBytes,
			OverheadPct: 100 * (float64(segBytes)/float64(mono) - 1),
		})
	}
	return rows, nil
}

// RenderSegmentation formats the Figure 2 tradeoff table.
func RenderSegmentation(rows []SegmentationRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 2 tradeoff: per-layer vs monolithic recordings\n")
	fmt.Fprintf(&b, "%-12s %8s %14s %14s %10s\n", "NN", "layers", "monolithic", "segmented", "overhead")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-12s %8d %11.2fMB %11.2fMB %+9.1f%%\n", r.Model, r.Segments,
			float64(r.MonolithicBytes)/1e6, float64(r.SegmentedBytes)/1e6, r.OverheadPct)
	}
	return b.String()
}

// RenderValidation formats the §7.3 experiment outputs.
func RenderValidation(def []DeferralRow, spec []SpeculationRow, mis []MispredictionRow, poll []PollingRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Deferral efficacy (OursM -> OursMD)\n%-12s %10s %10s %12s\n",
		"NN", "delay -%", "RTTs -%", "accesses/commit")
	for _, r := range def {
		fmt.Fprintf(&b, "%-12s %9.1f%% %9.1f%% %12.1f\n", r.Model,
			r.DelayReductionPct, r.RTTReductionPct, r.AccessesPerCommit)
	}
	fmt.Fprintf(&b, "\nSpeculation efficacy (OursMD -> OursMDS)\n%-12s %10s %10s %12s %8s\n",
		"NN", "delay -%", "RTTs -%", "spec'd", "mispred")
	for _, r := range spec {
		fmt.Fprintf(&b, "%-12s %9.1f%% %9.1f%% %11.1f%% %8d\n", r.Model,
			r.DelayReductionPct, r.RTTReductionPct, r.CommitsSpeculatedPct, r.Mispredictions)
	}
	fmt.Fprintf(&b, "\nMisprediction injection\n%-12s %10s %12s\n", "NN", "detected", "rollback")
	for _, r := range mis {
		fmt.Fprintf(&b, "%-12s %10v %11.1fs\n", r.Model, r.Detected, r.RecoveryTime.Seconds())
	}
	fmt.Fprintf(&b, "\nPolling offload\n%-12s %10s %12s %10s\n", "NN", "loops", "RTTs w/o", "saved")
	for _, r := range poll {
		fmt.Fprintf(&b, "%-12s %10d %12d %10d\n", r.Model, r.Instances, r.RTTsWithout, r.RTTsSaved)
	}
	return b.String()
}
