//go:build race

package experiments

// raceDetectorEnabled reports whether this test binary was built with
// -race. See skipIfRace in experiments_test.go.
const raceDetectorEnabled = true
