package experiments

import (
	"testing"
	"time"

	"gpurelay/internal/kbase"
	"gpurelay/internal/mlfw"
	"gpurelay/internal/netsim"
	"gpurelay/internal/record"
)

// fastSuite covers a small and a large model — enough to exercise every
// experiment's shape assertions without running all 48 configurations in
// unit tests (the full matrix runs in the benchmarks and cmd/grtbench).
func fastSuite() *Suite {
	return NewSuite(mlfw.MNIST(), mlfw.AlexNet())
}

// skipIfRace skips the matrix tests under the race detector. They are
// single-goroutine, CPU-bound full record simulations that slow down an
// order of magnitude when instrumented and blow the default test timeout;
// the shared-state paths they exercise (link, shims, history) get their
// race coverage from the parallel record tests in the root package.
func skipIfRace(t *testing.T) {
	t.Helper()
	if raceDetectorEnabled {
		t.Skip("matrix simulation too slow under -race; raced via root-package concurrency tests")
	}
}

func TestFigure7Shape(t *testing.T) {
	skipIfRace(t)
	s := fastSuite()
	for _, cond := range []netsim.Condition{netsim.WiFi, netsim.Cellular} {
		rows, err := s.Figure7(cond)
		if err != nil {
			t.Fatal(err)
		}
		if len(rows) != 2 {
			t.Fatalf("%s: %d rows", cond.Name, len(rows))
		}
		for _, r := range rows {
			d := r.Delays
			if !(d[record.Naive] > d[record.OursM] &&
				d[record.OursM] > d[record.OursMD] &&
				d[record.OursMD] > d[record.OursMDS]) {
				t.Errorf("%s/%s: ordering violated: %v", cond.Name, r.Model, d)
			}
			// Paper: OursMDS reduces Naive delays by up to 95%; always >75% here.
			if d[record.OursMDS].Seconds() > 0.25*d[record.Naive].Seconds() {
				t.Errorf("%s/%s: OursMDS %.1fs vs Naive %.1fs — reduction too small",
					cond.Name, r.Model, d[record.OursMDS].Seconds(), d[record.Naive].Seconds())
			}
		}
	}
}

func TestFigure7PaperBands(t *testing.T) {
	skipIfRace(t)
	// Absolute sanity on the WiFi numbers for MNIST: paper reports Naive
	// 52s and OursMDS in the tens of seconds overall; stay within 3x.
	s := fastSuite()
	rows, err := s.Figure7(netsim.WiFi)
	if err != nil {
		t.Fatal(err)
	}
	m := rows[0]
	if m.Model != "MNIST" {
		t.Fatalf("row order: %v", m.Model)
	}
	if naive := m.Delays[record.Naive].Seconds(); naive < 17 || naive > 160 {
		t.Errorf("Naive MNIST WiFi = %.1fs, paper 52s", naive)
	}
	if mds := m.Delays[record.OursMDS].Seconds(); mds < 1 || mds > 25 {
		t.Errorf("OursMDS MNIST WiFi = %.1fs, paper ~13s class", mds)
	}
}

func TestTable1Shape(t *testing.T) {
	skipIfRace(t)
	s := fastSuite()
	rows, err := s.Table1()
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		if r.Jobs != mlfw.PaperJobCounts[r.Model] {
			t.Errorf("%s: %d jobs", r.Model, r.Jobs)
		}
		if !(r.BlockingRTTs[record.OursM] > r.BlockingRTTs[record.OursMD] &&
			r.BlockingRTTs[record.OursMD] > r.BlockingRTTs[record.OursMDS]) {
			t.Errorf("%s: RTT ordering violated: %v", r.Model, r.BlockingRTTs)
		}
		if r.MemSyncMB[record.OursM] >= r.MemSyncMB[record.Naive]/2 {
			t.Errorf("%s: meta-only sync %.2fMB not well below naive %.2fMB",
				r.Model, r.MemSyncMB[record.OursM], r.MemSyncMB[record.Naive])
		}
	}
	// Cross-model: AlexNet's naive sync must dwarf MNIST's (weights).
	if rows[1].MemSyncMB[record.Naive] < 20*rows[0].MemSyncMB[record.Naive] {
		t.Errorf("AlexNet naive sync %.1fMB vs MNIST %.1fMB: weight-driven spread lost",
			rows[1].MemSyncMB[record.Naive], rows[0].MemSyncMB[record.Naive])
	}
}

func TestTable2Shape(t *testing.T) {
	skipIfRace(t)
	s := fastSuite()
	rows, err := s.Table2()
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		if r.ReplayMS <= 0 || r.NativeMS <= 0 {
			t.Fatalf("%s: %+v", r.Model, r)
		}
		// Paper: replay is 68% lower to 3% higher than native.
		if r.ReplayMS > 1.1*r.NativeMS {
			t.Errorf("%s: replay %.1fms much slower than native %.1fms", r.Model, r.ReplayMS, r.NativeMS)
		}
	}
	// MNIST is stack-overhead dominated: replay clearly faster.
	if rows[0].ReplayMS > 0.7*rows[0].NativeMS {
		t.Errorf("MNIST: replay %.1fms vs native %.1fms — expected large win", rows[0].ReplayMS, rows[0].NativeMS)
	}
	// Paper band: MNIST native 15.2ms, replay 4.8ms; allow 3x.
	if rows[0].NativeMS < 5 || rows[0].NativeMS > 45 {
		t.Errorf("MNIST native = %.1fms, paper 15.2ms", rows[0].NativeMS)
	}
	if rows[0].ReplayMS < 1.5 || rows[0].ReplayMS > 15 {
		t.Errorf("MNIST replay = %.1fms, paper 4.8ms", rows[0].ReplayMS)
	}
}

func TestFigure8Shape(t *testing.T) {
	skipIfRace(t)
	s := fastSuite()
	rows, err := s.Figure8()
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		if r.Total == 0 {
			t.Fatalf("%s: no speculated commits", r.Model)
		}
		var sum float64
		for _, share := range r.Share {
			sum += share
		}
		if sum < 0.999 || sum > 1.001 {
			t.Errorf("%s: shares sum to %v", r.Model, sum)
		}
		for _, cat := range []kbase.Category{kbase.CatInterrupt, kbase.CatPower, kbase.CatPolling} {
			if r.Share[cat] == 0 {
				t.Errorf("%s: category %s empty", r.Model, cat)
			}
		}
	}
}

func TestFigure9Shape(t *testing.T) {
	skipIfRace(t)
	s := fastSuite()
	rows, err := s.Figure9()
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		// Paper: GR-T reduces record energy by 84-99%.
		if r.SavingPercent < 80 {
			t.Errorf("%s: energy saving only %.1f%%", r.Model, r.SavingPercent)
		}
		// Replay energy band: paper 0.01-1.3 J.
		if r.ReplayJ <= 0 || r.ReplayJ > 3 {
			t.Errorf("%s: replay energy %.3fJ", r.Model, r.ReplayJ)
		}
		// Record energy for the optimized recorder: paper 1.8-8.2 J.
		if r.RecordOursJ <= 0.1 || r.RecordOursJ > 30 {
			t.Errorf("%s: record energy %.2fJ", r.Model, r.RecordOursJ)
		}
	}
}

func TestDeferralEfficacyBands(t *testing.T) {
	skipIfRace(t)
	s := fastSuite()
	rows, err := s.DeferralEfficacy(netsim.WiFi)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		// Paper: 65-69% delay reduction, 73% fewer RTTs, 3.8 acc/commit.
		if r.DelayReductionPct < 40 || r.DelayReductionPct > 90 {
			t.Errorf("%s: deferral delay reduction %.1f%%, paper ~65%%", r.Model, r.DelayReductionPct)
		}
		if r.RTTReductionPct < 50 || r.RTTReductionPct > 95 {
			t.Errorf("%s: deferral RTT reduction %.1f%%, paper ~73%%", r.Model, r.RTTReductionPct)
		}
		if r.AccessesPerCommit < 2 || r.AccessesPerCommit > 8 {
			t.Errorf("%s: %.1f accesses/commit, paper 3.8", r.Model, r.AccessesPerCommit)
		}
	}
}

func TestSpeculationEfficacyBands(t *testing.T) {
	skipIfRace(t)
	s := fastSuite()
	rows, err := s.SpeculationEfficacy(netsim.WiFi)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		if r.DelayReductionPct < 40 {
			t.Errorf("%s: speculation delay reduction %.1f%%, paper 60-74%%", r.Model, r.DelayReductionPct)
		}
		// Paper: 95% of commits meet the criteria (with warm history).
		if r.CommitsSpeculatedPct < 70 {
			t.Errorf("%s: only %.1f%% commits speculated, paper 95%%", r.Model, r.CommitsSpeculatedPct)
		}
		if r.Mispredictions != 0 {
			t.Errorf("%s: %d natural mispredictions (paper: none in 1000 runs)", r.Model, r.Mispredictions)
		}
	}
}

func TestMispredictionCostBands(t *testing.T) {
	skipIfRace(t)
	s := fastSuite()
	rows, err := s.MispredictionCost("MNIST")
	if err != nil {
		t.Fatal(err)
	}
	r := rows[0]
	if !r.Detected {
		t.Fatal("injected misprediction not detected")
	}
	// Paper: 1s for MNIST, 3s for VGG16.
	if r.RecoveryTime < 300*time.Millisecond || r.RecoveryTime > 4*time.Second {
		t.Errorf("MNIST rollback %.2fs, paper ~1s", r.RecoveryTime.Seconds())
	}
}

func TestPollingOffloadBands(t *testing.T) {
	skipIfRace(t)
	s := fastSuite()
	rows, err := s.PollingOffload()
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		if r.Instances == 0 || r.RTTsSaved == 0 {
			t.Fatalf("%s: %+v", r.Model, r)
		}
		if r.RTTsSaved >= r.RTTsWithout {
			t.Fatalf("%s: saved %d of %d RTTs", r.Model, r.RTTsSaved, r.RTTsWithout)
		}
	}
	// Paper: 117 poll instances for MNIST; within 3x.
	if rows[0].Instances < 40 || rows[0].Instances > 400 {
		t.Errorf("MNIST poll instances = %d, paper 117", rows[0].Instances)
	}
}

func TestHistoryAblation(t *testing.T) {
	skipIfRace(t)
	s := fastSuite()
	// Warm the shared history first.
	if _, err := s.Record("MNIST", record.OursMDS, netsim.WiFi); err != nil {
		t.Fatal(err)
	}
	rows, err := s.HistoryAblation()
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		if r.NoHistoryDelay < r.FullDelay {
			t.Errorf("%s: cold history (%v) beat warm history (%v)",
				r.Model, r.NoHistoryDelay, r.FullDelay)
		}
	}
}

func TestRenderersProduceOutput(t *testing.T) {
	skipIfRace(t)
	s := NewSuite(mlfw.MNIST())
	f7, err := s.Figure7(netsim.WiFi)
	if err != nil {
		t.Fatal(err)
	}
	t1, err := s.Table1()
	if err != nil {
		t.Fatal(err)
	}
	t2, err := s.Table2()
	if err != nil {
		t.Fatal(err)
	}
	f8, err := s.Figure8()
	if err != nil {
		t.Fatal(err)
	}
	f9, err := s.Figure9()
	if err != nil {
		t.Fatal(err)
	}
	for name, out := range map[string]string{
		"fig7": RenderFigure7("Figure 7(a)", f7),
		"t1":   RenderTable1(t1),
		"t2":   RenderTable2(t2),
		"fig8": RenderFigure8(f8),
		"fig9": RenderFigure9(f9),
	} {
		if len(out) < 50 {
			t.Errorf("%s render too short: %q", name, out)
		}
	}
}

func TestKSweepAblation(t *testing.T) {
	skipIfRace(t)
	s := NewSuite(mlfw.MNIST())
	rows, err := s.KSweep("MNIST", 1, 3)
	if err != nil {
		t.Fatal(err)
	}
	k1, k3 := rows[0], rows[1]
	// k=1 trusts a single past outcome: it predicts the nondeterministic
	// flush-ID commits and pays rollbacks for it.
	if k1.Mispredictions == 0 {
		t.Fatal("k=1 never mispredicted; flush-ID nondeterminism lost")
	}
	if k3.Mispredictions != 0 {
		t.Fatalf("k=3 mispredicted %d times", k3.Mispredictions)
	}
	// Rollbacks cost seconds; k=3 must beat k=1 end to end.
	if k3.Delay >= k1.Delay {
		t.Fatalf("k=3 (%v) not faster than k=1 (%v) despite k=1's %d rollbacks",
			k3.Delay, k1.Delay, k1.Mispredictions)
	}
	if out := RenderKSweep("MNIST", rows); len(out) < 50 {
		t.Fatalf("render: %q", out)
	}
}

func TestRTTSweepShowsLatencyInsensitivity(t *testing.T) {
	skipIfRace(t)
	s := NewSuite(mlfw.MNIST())
	rows, err := s.RTTSweep("MNIST", 10*time.Millisecond, 80*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	low, high := rows[0], rows[1]
	// Both recorders' delays grow with RTT (round trips cannot be
	// eliminated entirely), but the optimized recorder pays far fewer of
	// them: its marginal cost per ms of RTT — the slope — must be an
	// order of magnitude smaller.
	naiveSlope := (high.Delays[record.Naive] - low.Delays[record.Naive]).Seconds()
	oursSlope := (high.Delays[record.OursMDS] - low.Delays[record.OursMDS]).Seconds()
	if naiveSlope <= 0 {
		t.Fatalf("naive delay did not grow with RTT: %v -> %v",
			low.Delays[record.Naive], high.Delays[record.Naive])
	}
	if oursSlope*5 > naiveSlope {
		t.Errorf("OursMDS RTT slope %.2fs not well below naive %.2fs (per 70ms RTT)",
			oursSlope, naiveSlope)
	}
	// And at every RTT the optimized recorder wins by a wide margin.
	for _, r := range rows {
		if r.Delays[record.OursMDS]*4 > r.Delays[record.Naive] {
			t.Errorf("at RTT %v: OursMDS %v vs Naive %v", r.RTT,
				r.Delays[record.OursMDS], r.Delays[record.Naive])
		}
	}
	if out := RenderRTTSweep("MNIST", rows); len(out) < 50 {
		t.Fatalf("render: %q", out)
	}
}

func TestSegmentationTradeoff(t *testing.T) {
	skipIfRace(t)
	s := NewSuite(mlfw.MNIST())
	rows, err := s.SegmentationTradeoff("MNIST")
	if err != nil {
		t.Fatal(err)
	}
	r := rows[0]
	if r.Segments != 9 {
		t.Fatalf("MNIST segments = %d, want 9 layers", r.Segments)
	}
	// Segmentation adds per-segment headers, region maps and signatures —
	// real but modest overhead.
	if r.OverheadPct <= 0 {
		t.Fatalf("segmentation shows no overhead (%+.1f%%)", r.OverheadPct)
	}
	if r.OverheadPct > 60 {
		t.Fatalf("segmentation overhead %.1f%% implausibly high", r.OverheadPct)
	}
	if out := RenderSegmentation(rows); len(out) < 50 {
		t.Fatalf("render: %q", out)
	}
}
