package experiments

import (
	"fmt"
	"strings"
	"time"

	"gpurelay/internal/energy"
	"gpurelay/internal/kbase"
	"gpurelay/internal/netsim"
	"gpurelay/internal/obs"
	"gpurelay/internal/record"
)

// Figure7Row is one model's recording delays across the four recorder
// variants under one network condition.
type Figure7Row struct {
	Model  string
	Delays map[record.Variant]time.Duration
}

// Figure7 reproduces Figure 7(a) (WiFi) or 7(b) (cellular): end-to-end
// recording delays for Naive, OursM, OursMD, OursMDS.
func (s *Suite) Figure7(cond netsim.Condition) ([]Figure7Row, error) {
	var rows []Figure7Row
	for _, m := range s.Models {
		row := Figure7Row{Model: m.Name, Delays: map[record.Variant]time.Duration{}}
		for _, v := range record.Variants {
			res, err := s.Record(m.Name, v, cond)
			if err != nil {
				return nil, err
			}
			row.Delays[v] = res.Stats.RecordingDelay
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// Table1Row is one model's row of Table 1.
type Table1Row struct {
	Model        string
	Jobs         int
	BlockingRTTs map[record.Variant]int
	MemSyncMB    map[record.Variant]float64
}

// Table1 reproduces Table 1: blocking round trips for OursM/OursMD/OursMDS
// and memory-synchronization traffic for Naive vs OursM, all under WiFi.
// Both columns are read from each run's telemetry snapshot — the numbers in
// the paper's table and the numbers a /metrics endpoint exposes are the same
// series by construction.
func (s *Suite) Table1() ([]Table1Row, error) {
	var rows []Table1Row
	for _, m := range s.Models {
		row := Table1Row{
			Model:        m.Name,
			BlockingRTTs: map[record.Variant]int{},
			MemSyncMB:    map[record.Variant]float64{},
		}
		for _, v := range record.Variants {
			res, err := s.Record(m.Name, v, netsim.WiFi)
			if err != nil {
				return nil, err
			}
			snap := res.Stats.Obs
			row.Jobs = int(snap.Counter(obs.MRecordJobs))
			row.BlockingRTTs[v] = int(snap.Counter(obs.MNetRTTs, obs.L("mode", "blocking")))
			row.MemSyncMB[v] = float64(snap.CounterTotal(obs.MSyncBytes)) / 1e6
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// Table2Row is one model's replay-vs-native delay comparison.
type Table2Row struct {
	Model    string
	NativeMS float64
	ReplayMS float64
}

// Table2 reproduces Table 2: replay delay (in-TEE, no GPU stack) against
// native execution (full stack, normal world, same device).
func (s *Suite) Table2() ([]Table2Row, error) {
	var rows []Table2Row
	for _, m := range s.Models {
		native, err := s.Native(m.Name)
		if err != nil {
			return nil, err
		}
		rp, err := s.Replay(m.Name)
		if err != nil {
			return nil, err
		}
		rows = append(rows, Table2Row{
			Model:    m.Name,
			NativeMS: float64(native) / float64(time.Millisecond),
			ReplayMS: float64(rp.Delay) / float64(time.Millisecond),
		})
	}
	return rows, nil
}

// Figure8Row is one model's speculated-commit breakdown.
type Figure8Row struct {
	Model string
	// Total is the number of speculated commits (the parenthesized count
	// in the paper's Figure 8).
	Total int
	// Share is the fraction per driver-routine category.
	Share map[kbase.Category]float64
}

// Figure8 reproduces Figure 8: the breakdown of speculative commits by the
// driver routine that issued them (init / interrupt / power state /
// polling), normalized to 100%.
func (s *Suite) Figure8() ([]Figure8Row, error) {
	var rows []Figure8Row
	for _, m := range s.Models {
		res, err := s.Record(m.Name, record.OursMDS, netsim.WiFi)
		if err != nil {
			return nil, err
		}
		spec := res.Stats.Obs.CounterBy(obs.MShimSpeculatedByCat, "category")
		var total int64
		for _, n := range spec {
			total += n
		}
		row := Figure8Row{Model: m.Name, Total: int(total), Share: map[kbase.Category]float64{}}
		for cat, n := range spec {
			row.Share[kbase.Category(cat)] = float64(n) / float64(total)
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// Figure9Row is one model's record/replay energy.
type Figure9Row struct {
	Model         string
	RecordNaiveJ  float64
	RecordOursJ   float64
	ReplayJ       float64
	SavingPercent float64
}

// Figure9 reproduces Figure 9: client system energy for record (Naive vs
// OursMDS) and replay.
func (s *Suite) Figure9() ([]Figure9Row, error) {
	var rows []Figure9Row
	model := energy.Default()
	for _, m := range s.Models {
		naive, err := s.Record(m.Name, record.Naive, netsim.WiFi)
		if err != nil {
			return nil, err
		}
		ours, err := s.Record(m.Name, record.OursMDS, netsim.WiFi)
		if err != nil {
			return nil, err
		}
		rp, err := s.Replay(m.Name)
		if err != nil {
			return nil, err
		}
		row := Figure9Row{
			Model:        m.Name,
			RecordNaiveJ: float64(naive.Stats.Energy),
			RecordOursJ:  float64(ours.Stats.Energy),
			ReplayJ:      float64(model.Replay(rp.GPUBusy, rp.CPUTime)),
		}
		row.SavingPercent = 100 * (1 - row.RecordOursJ/row.RecordNaiveJ)
		rows = append(rows, row)
	}
	return rows, nil
}

// RenderFigure7 formats Figure 7 rows as a text table.
func RenderFigure7(title string, rows []Figure7Row) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n%-12s %10s %10s %10s %10s\n", title,
		"NN", "Naive", "OursM", "OursMD", "OursMDS")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-12s %9.1fs %9.1fs %9.1fs %9.1fs\n", r.Model,
			r.Delays[record.Naive].Seconds(), r.Delays[record.OursM].Seconds(),
			r.Delays[record.OursMD].Seconds(), r.Delays[record.OursMDS].Seconds())
	}
	return b.String()
}

// RenderTable1 formats Table 1 rows as a text table.
func RenderTable1(rows []Table1Row) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Table 1: record-run statistics\n")
	fmt.Fprintf(&b, "%-12s %6s | %8s %8s %8s | %10s %10s\n", "NN (#jobs)", "",
		"OursM", "OursMD", "OursMDS", "Naive(MB)", "OursM(MB)")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-12s (%3d) | %8d %8d %8d | %10.2f %10.2f\n",
			r.Model, r.Jobs,
			r.BlockingRTTs[record.OursM], r.BlockingRTTs[record.OursMD],
			r.BlockingRTTs[record.OursMDS],
			r.MemSyncMB[record.Naive], r.MemSyncMB[record.OursM])
	}
	return b.String()
}

// RenderTable2 formats Table 2 rows.
func RenderTable2(rows []Table2Row) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Table 2: replay vs native delays (ms)\n%-12s %10s %10s %8s\n",
		"NN", "Native", "OursMDS", "delta")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-12s %10.1f %10.1f %+7.0f%%\n", r.Model, r.NativeMS, r.ReplayMS,
			100*(r.ReplayMS-r.NativeMS)/r.NativeMS)
	}
	return b.String()
}

// RenderFigure8 formats Figure 8 rows.
func RenderFigure8(rows []Figure8Row) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 8: speculative commits by category (normalized; total in parens)\n")
	cats := []kbase.Category{kbase.CatInit, kbase.CatInterrupt, kbase.CatPower, kbase.CatPolling, kbase.CatSubmit}
	fmt.Fprintf(&b, "%-12s %8s", "NN", "(total)")
	for _, c := range cats {
		fmt.Fprintf(&b, " %10s", c)
	}
	fmt.Fprintln(&b)
	for _, r := range rows {
		fmt.Fprintf(&b, "%-12s %8s", r.Model, fmt.Sprintf("(%d)", r.Total))
		for _, c := range cats {
			fmt.Fprintf(&b, " %9.1f%%", 100*r.Share[c])
		}
		fmt.Fprintln(&b)
	}
	return b.String()
}

// RenderFigure9 formats Figure 9 rows.
func RenderFigure9(rows []Figure9Row) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 9: client energy (J)\n%-12s %12s %12s %10s %8s\n",
		"NN", "Rec(Naive)", "Rec(Ours)", "Replay", "saving")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-12s %12.2f %12.2f %10.3f %7.1f%%\n",
			r.Model, r.RecordNaiveJ, r.RecordOursJ, r.ReplayJ, r.SavingPercent)
	}
	return b.String()
}
