// Package experiments regenerates every table and figure of the paper's
// evaluation (§7): Figure 7 (recording delays under WiFi and cellular),
// Table 1 (round trips and synchronization traffic), Table 2 (replay vs
// native delays), Figure 8 (speculated-commit breakdown), Figure 9 (record
// and replay energy), and the §7.3 validation experiments (deferral
// efficacy, speculation efficacy, misprediction cost, polling offload).
//
// All experiments run on the virtual clock: a "795-second" cellular Naive
// recording completes in well under a second of real time.
package experiments

import (
	"fmt"
	"sync"
	"time"

	"gpurelay/internal/gpumem"
	"gpurelay/internal/kbase"
	"gpurelay/internal/mali"
	"gpurelay/internal/mlfw"
	"gpurelay/internal/netsim"
	"gpurelay/internal/obs"
	"gpurelay/internal/record"
	"gpurelay/internal/replay"
	"gpurelay/internal/shim"
	"gpurelay/internal/tee"
	"gpurelay/internal/timesim"
)

// sessionKey is the fixed benchmark session key (a real deployment derives
// one per attested session; see internal/cloud).
var sessionKey = []byte("grt-experiments-key-0123456789ab")

// Suite runs and caches record/replay/native executions so that experiments
// sharing a configuration do not repeat work. The speculation history is
// retained across OursMDS runs, as the paper's evaluation does (§7.3).
type Suite struct {
	Models []*mlfw.Model
	SKU    *mali.SKU

	mu      sync.Mutex
	history *shim.History
	records map[string]*record.Result
	replays map[string]*replay.Result
	natives map[string]time.Duration
	gpuBusy map[string]time.Duration // native-run GPU busy time
}

// NewSuite builds a suite over the given models (defaults to the paper's six
// benchmarks on the G71 MP8 client).
func NewSuite(models ...*mlfw.Model) *Suite {
	if len(models) == 0 {
		models = mlfw.Benchmarks()
	}
	return &Suite{
		Models:  models,
		SKU:     mali.G71MP8,
		history: shim.NewHistory(3),
		records: map[string]*record.Result{},
		replays: map[string]*replay.Result{},
		natives: map[string]time.Duration{},
		gpuBusy: map[string]time.Duration{},
	}
}

func (s *Suite) model(name string) *mlfw.Model {
	for _, m := range s.Models {
		if m.Name == name {
			return m
		}
	}
	panic(fmt.Sprintf("experiments: unknown model %q", name))
}

// Record runs (or returns the cached) record run for a model, variant and
// network condition.
func (s *Suite) Record(model string, v record.Variant, cond netsim.Condition) (*record.Result, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	key := fmt.Sprintf("%s/%v/%s", model, v, cond.Name)
	if r, ok := s.records[key]; ok {
		return r, nil
	}
	var hist *shim.History
	if v == record.OursMDS {
		hist = s.history
	}
	// Every run carries a counters-only scope (spans disabled: a naive
	// VGG16 recording makes hundreds of thousands of round trips). The
	// tables below read their numbers from the resulting snapshot — the
	// same collector a production /metrics endpoint would serve — instead
	// of recomputing them from ad-hoc stat structs.
	scope := obs.NewScope(key, obs.Options{SpanCapacity: -1})
	res, err := record.Run(record.Config{
		Variant: v, Model: s.model(model), SKU: s.SKU, Network: cond,
		SessionKey: sessionKey, History: hist,
		ClientSeed: 42, InjectMispredictionAt: -1,
		Obs: scope,
	})
	if err != nil {
		return nil, fmt.Errorf("experiments: recording %s: %w", key, err)
	}
	// Only the OursMDS/WiFi recordings are replayed later; drop the other
	// variants' event logs (a naive VGG16 recording embeds hundreds of MB
	// of raw memory dumps) and keep just their statistics.
	if !(v == record.OursMDS && cond.Name == netsim.WiFi.Name) {
		res.Recording.Events = nil
		res.Signed = nil
	}
	s.records[key] = res
	return res, nil
}

// Replay runs (or returns the cached) replay of a model's OursMDS WiFi
// recording on a fresh simulated device.
func (s *Suite) Replay(model string) (*replay.Result, error) {
	rec, err := s.Record(model, record.OursMDS, netsim.WiFi)
	if err != nil {
		return nil, err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if r, ok := s.replays[model]; ok {
		return r, nil
	}
	clock := timesim.NewClock()
	gpu := mali.New(s.SKU, gpumem.NewPool(rec.Recording.PoolSize), clock, 777)
	ctrl := tee.NewController(gpu)
	rp, err := replay.New(rec.Signed, sessionKey, gpu, ctrl, clock)
	if err != nil {
		return nil, err
	}
	res, err := rp.Run()
	if err != nil {
		return nil, fmt.Errorf("experiments: replaying %s: %w", model, err)
	}
	s.replays[model] = &res
	return &res, nil
}

// Native runs (or returns the cached) native execution: the full GPU stack
// in the normal world of the client device, pipelined, no TEE.
func (s *Suite) Native(model string) (time.Duration, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if d, ok := s.natives[model]; ok {
		return d, nil
	}
	m := s.model(model)
	clock := timesim.NewClock()
	pool := gpumem.NewPool(m.TotalBytes()*3/2 + (64 << 20))
	gpu := mali.New(s.SKU, pool, clock, 31)
	dev, err := kbase.Probe(kbase.NewDirectBus(gpu, clock), kbase.NewStdKernel(clock), pool)
	if err != nil {
		return 0, err
	}
	rt, err := mlfw.NewRuntime(dev, clock, m, mlfw.DefaultOptions())
	if err != nil {
		return 0, err
	}
	busyBefore := gpu.Stats().Busy
	res, err := rt.Run(kbase.SyncHooks{})
	if err != nil {
		return 0, fmt.Errorf("experiments: native %s: %w", model, err)
	}
	s.natives[model] = res.Duration
	s.gpuBusy[model] = gpu.Stats().Busy - busyBefore
	return res.Duration, nil
}
