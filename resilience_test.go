package gpurelay

// Resilience acceptance tests: the chaos matrix (fault plans × models) plus
// checkpoint round-trip, tamper, and external-resume coverage. The matrix
// asserts the core stitching guarantee — a session killed and resumed
// mid-record produces a recording byte-identical to an uninterrupted run —
// and TestObsResilience* verify the resilience counters surface in the
// service's fleet metrics (those run under the CI telemetry smoke too).
//
// The CI chaos job runs `go test -race -run 'TestChaos|TestResumable|TestObsResilience'`
// with GRT_CHAOS_METRICS set, publishing the fleet metrics snapshot of the
// shared chaos service as a build artifact.

import (
	"bytes"
	"context"
	"errors"
	"os"
	"strings"
	"sync"
	"testing"

	"gpurelay/internal/obs"
)

var chaosModels = []struct {
	name       string
	model      func() *Model
	inputElems int
}{
	{"MNIST", MNIST, 28 * 28},
	{"AlexNet", AlexNet, 3 * 227 * 227},
	{"SqueezeNet", SqueezeNet, 3 * 224 * 224},
}

// Every plan here carries at least one fatal fault that fires within each
// model's record timeline, so every cell exercises a genuine session loss.
var chaosPlans = []string{"outage", "vm-crash", "flaky"}

// replayOutputs replays a recording with deterministic synthetic weights and
// input and returns the inference output.
func replayOutputs(t *testing.T, client *Client, rec *Recording, inputElems int) []float32 {
	t.Helper()
	sess, err := client.NewReplaySession(rec)
	if err != nil {
		t.Fatalf("replay session: %v", err)
	}
	state := uint64(7)
	next := func() float32 {
		state ^= state << 13
		state ^= state >> 7
		state ^= state << 17
		return (float32(state%2048)/1024 - 1) / 8
	}
	for _, r := range sess.WeightRegions() {
		w := make([]float32, r.Elems)
		for i := range w {
			w[i] = next()
		}
		if err := sess.SetWeights(r.Name, w); err != nil {
			t.Fatal(err)
		}
	}
	input := make([]float32, inputElems)
	for i := range input {
		input[i] = float32(i % 256)
	}
	if err := sess.SetInput(input); err != nil {
		t.Fatal(err)
	}
	if _, err := sess.Run(); err != nil {
		t.Fatal(err)
	}
	out, err := sess.Output()
	if err != nil {
		t.Fatal(err)
	}
	return out
}

// TestChaosMatrix records every model under every fault plan and checks the
// stitched recording against an undisturbed baseline: byte-identical payload,
// verifiable seal, identical replay outputs.
func TestChaosMatrix(t *testing.T) {
	models := chaosModels
	if raceDetectorEnabled && os.Getenv("GRT_CHAOS_FULL") == "" {
		// The full matrix costs ~10 CPU-minutes under the race detector —
		// past go test's default timeout on small machines. The plain -race
		// sweep keeps the MNIST row (every plan, every code path); the CI
		// chaos job opts back into the full matrix with GRT_CHAOS_FULL=1
		// and a raised -timeout.
		models = models[:1]
		t.Logf("race detector: trimming the matrix to %s (set GRT_CHAOS_FULL=1 for all models)", models[0].name)
	}

	// One shared service hosts all chaos cells, so the fleet registry
	// aggregates the whole matrix — that snapshot is the CI artifact.
	chaosSvc := NewService()

	// Baselines are recorded once per model (all plans compare against the
	// same undisturbed run: a fresh client and a fresh service reproduce
	// the same session seed the chaos cell gets).
	type baseline struct {
		once    sync.Once
		payload []byte
		outputs []float32
		err     error
	}
	baselines := map[string]*baseline{}
	for _, m := range chaosModels {
		baselines[m.name] = &baseline{}
	}

	t.Run("matrix", func(t *testing.T) {
		for _, m := range models {
			for _, planName := range chaosPlans {
				m, planName := m, planName
				t.Run(m.name+"/"+planName, func(t *testing.T) {
					t.Parallel()
					b := baselines[m.name]
					b.once.Do(func() {
						client := NewClient("chaos-base-"+m.name, MaliG71MP8)
						rec, _, err := client.Record(NewService(), m.model(), RecordOptions{})
						if err != nil {
							b.err = err
							return
						}
						b.payload, _, _ = rec.Bundle()
						b.outputs = replayOutputs(t, client, rec, m.inputElems)
					})
					if b.err != nil {
						t.Fatalf("baseline record: %v", b.err)
					}

					plan, err := ParseFaultPlan(planName)
					if err != nil {
						t.Fatal(err)
					}
					client := NewClient("chaos-"+m.name+"-"+planName, MaliG71MP8)
					var mu sync.Mutex
					checkpoints, lastJob := 0, -1
					rec, stats, err := client.RecordResumable(context.Background(), chaosSvc, m.model(),
						ResilienceOptions{
							Faults: plan,
							OnCheckpoint: func(cp *Checkpoint) {
								mu.Lock()
								checkpoints++
								lastJob = cp.Job()
								mu.Unlock()
							},
						})
					if err != nil {
						t.Fatalf("chaos record: %v", err)
					}
					if stats.Resumes < 1 {
						t.Fatalf("plan %q never killed the session (resumes = %d)", planName, stats.Resumes)
					}
					mu.Lock()
					t.Logf("resumes=%d checkpoints=%d lastJob=%d resyncEvents=%d",
						stats.Resumes, checkpoints, lastJob, stats.Shim.ResyncEvents)
					if checkpoints == 0 {
						mu.Unlock()
						t.Fatal("no checkpoints captured")
					}
					mu.Unlock()

					payload, mac, key := rec.Bundle()
					if !bytes.Equal(b.payload, payload) {
						t.Fatalf("stitched recording differs from baseline: %d vs %d bytes",
							len(payload), len(b.payload))
					}
					if _, err := RecordingFromBundle(payload, mac, key); err != nil {
						t.Fatalf("stitched recording fails verification: %v", err)
					}
					out := replayOutputs(t, client, rec, m.inputElems)
					if len(out) != len(b.outputs) {
						t.Fatalf("replay outputs: %d vs baseline %d", len(out), len(b.outputs))
					}
					for i := range out {
						if out[i] != b.outputs[i] {
							t.Fatalf("replay output %d differs: %v vs %v", i, out[i], b.outputs[i])
						}
					}
				})
			}
		}
	})

	if path := os.Getenv("GRT_CHAOS_METRICS"); path != "" {
		f, err := os.Create(path)
		if err != nil {
			t.Fatalf("creating chaos metrics artifact: %v", err)
		}
		if err := chaosSvc.WriteMetrics(f); err != nil {
			t.Fatalf("writing chaos metrics artifact: %v", err)
		}
		if err := f.Close(); err != nil {
			t.Fatal(err)
		}
		t.Logf("wrote chaos fleet metrics to %s", path)
	}
}

// Device-fault axis of the chaos matrix. The thermal cell uses a window
// wide enough to cover any model's whole record timeline (guaranteeing
// stretched GPU work); ecc and falloff are the fatal presets, each killing
// the device under the session exactly once.
var deviceChaosPlans = []struct {
	name  string
	spec  string
	fatal bool
}{
	{"thermal", "thermal@100ms+5m:x4", false},
	{"ecc", "ecc", true},
	{"falloff", "falloff", true},
}

// TestChaosDeviceMatrix records every model under every device-health plan
// and checks the (possibly migrated) recording against an undisturbed
// baseline, plus the device registry's scar tissue: thermal throttling
// stretches GPU time but loses nothing; an uncorrectable ECC fault degrades
// the device; a bus fall-off kills it. Either fatal plan must drive exactly
// one cross-VM migration, and all three must seal byte-identical bytes.
func TestChaosDeviceMatrix(t *testing.T) {
	models := chaosModels
	if raceDetectorEnabled && os.Getenv("GRT_CHAOS_FULL") == "" {
		models = models[:1]
		t.Logf("race detector: trimming the matrix to %s (set GRT_CHAOS_FULL=1 for all models)", models[0].name)
	}

	type baseline struct {
		once    sync.Once
		payload []byte
		outputs []float32
		err     error
	}
	baselines := map[string]*baseline{}
	for _, m := range chaosModels {
		baselines[m.name] = &baseline{}
	}

	for _, m := range models {
		for _, pc := range deviceChaosPlans {
			m, pc := m, pc
			t.Run(m.name+"/"+pc.name, func(t *testing.T) {
				t.Parallel()
				b := baselines[m.name]
				b.once.Do(func() {
					client := NewClient("devchaos-base-"+m.name, MaliG71MP8)
					rec, _, err := client.Record(NewService(), m.model(), RecordOptions{})
					if err != nil {
						b.err = err
						return
					}
					b.payload, _, _ = rec.Bundle()
					b.outputs = replayOutputs(t, client, rec, m.inputElems)
				})
				if b.err != nil {
					t.Fatalf("baseline record: %v", b.err)
				}

				plan, err := ParseFaultPlan(pc.spec)
				if err != nil {
					t.Fatal(err)
				}
				// A fresh service per cell so the device inventory shows only
				// this cell's scars.
				svc := NewService()
				client := NewClient("devchaos-"+m.name+"-"+pc.name, MaliG71MP8)
				rec, stats, err := client.RecordResumable(context.Background(), svc, m.model(),
					ResilienceOptions{Faults: plan})
				if err != nil {
					t.Fatalf("device chaos record: %v", err)
				}

				var degraded, dead, migrations int
				for _, d := range svc.Devices() {
					switch d.State {
					case "degraded":
						degraded++
						if d.ECCDBE == 0 {
							t.Errorf("degraded device %s has no DBE booked", d.ID)
						}
					case "dead":
						dead++
						if d.FallOffs == 0 {
							t.Errorf("dead device %s has no fall-off booked", d.ID)
						}
					}
					migrations += d.Migrations
				}
				if pc.fatal {
					if stats.Resumes < 1 {
						t.Fatalf("plan %q never killed the device (resumes = %d)", pc.spec, stats.Resumes)
					}
					if migrations != 1 {
						t.Fatalf("plan %q drove %d migrations, want 1", pc.spec, migrations)
					}
					if pc.name == "ecc" && degraded != 1 {
						t.Fatalf("ecc plan left %d degraded devices, want 1", degraded)
					}
					if pc.name == "falloff" && dead != 1 {
						t.Fatalf("falloff plan left %d dead devices, want 1", dead)
					}
				} else {
					if stats.Resumes != 0 {
						t.Fatalf("thermal throttling killed the session (resumes = %d)", stats.Resumes)
					}
					if stats.GPUThrottled <= 0 {
						t.Fatal("thermal window stretched no GPU time")
					}
					if degraded+dead+migrations != 0 {
						t.Fatalf("thermal plan scarred the fleet: %d degraded, %d dead, %d migrations",
							degraded, dead, migrations)
					}
				}

				payload, mac, key := rec.Bundle()
				if !bytes.Equal(b.payload, payload) {
					t.Fatalf("recording differs from baseline: %d vs %d bytes",
						len(payload), len(b.payload))
				}
				if _, err := RecordingFromBundle(payload, mac, key); err != nil {
					t.Fatalf("recording fails verification: %v", err)
				}
				out := replayOutputs(t, client, rec, m.inputElems)
				for i := range out {
					if out[i] != b.outputs[i] {
						t.Fatalf("replay output %d differs: %v vs %v", i, out[i], b.outputs[i])
					}
				}
			})
		}
	}
}

// TestECCFailsClosedWithoutResume proves the fail-closed half of the ECC
// path: when resumes are disabled, an uncorrectable ECC fault surfaces as a
// loss that wraps BOTH ErrDeviceLost and ErrBadRecording — the poisoned
// attempt can never be mistaken for a sealable recording — and the device
// is still marked degraded so later admissions avoid it.
func TestECCFailsClosedWithoutResume(t *testing.T) {
	plan, err := ParseFaultPlan("ecc")
	if err != nil {
		t.Fatal(err)
	}
	svc := NewService()
	rec, _, err := NewClient("ecc-fail-closed", MaliG71MP8).RecordResumable(
		context.Background(), svc, MNIST(),
		ResilienceOptions{Faults: plan, MaxResumes: -1})
	if rec != nil {
		t.Fatal("a poisoned session sealed a recording")
	}
	if !errors.Is(err, ErrDeviceLost) || !errors.Is(err, ErrBadRecording) {
		t.Fatalf("error = %v, want ErrDeviceLost wrapping ErrBadRecording", err)
	}
	degraded := 0
	for _, d := range svc.Devices() {
		if d.State == "degraded" {
			degraded++
		}
	}
	if degraded != 1 {
		t.Fatalf("%d degraded devices after the DBE, want 1", degraded)
	}
}

// TestResumableNoFaults checks RecordResumable degenerates to Record when
// nothing goes wrong.
func TestResumableNoFaults(t *testing.T) {
	base, _, err := NewClient("calm-base", MaliG71MP8).Record(NewService(), MNIST(), RecordOptions{})
	if err != nil {
		t.Fatal(err)
	}
	rec, stats, err := NewClient("calm", MaliG71MP8).RecordResumable(
		context.Background(), NewService(), MNIST(), ResilienceOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Resumes != 0 {
		t.Fatalf("undisturbed run reported %d resumes", stats.Resumes)
	}
	basePayload, _, _ := base.Bundle()
	payload, _, _ := rec.Bundle()
	if !bytes.Equal(basePayload, payload) {
		t.Fatal("RecordResumable without faults differs from Record")
	}
}

// TestResumableExternalCheckpoint is the grtrecord -resume flow: a session
// dies with resumes disabled, its last checkpoint round-trips through
// Bundle/CheckpointFromBundle (as if written to disk and reloaded by a new
// process), and a second call stitches the rest of the recording.
func TestResumableExternalCheckpoint(t *testing.T) {
	plan, err := ParseFaultPlan("vm-crash")
	if err != nil {
		t.Fatal(err)
	}
	var mu sync.Mutex
	var last *Checkpoint
	_, _, err = NewClient("mortal", MaliG71MP8).RecordResumable(
		context.Background(), NewService(), MNIST(), ResilienceOptions{
			Faults:     plan,
			MaxResumes: -1, // die on the first loss, like a client crash
			OnCheckpoint: func(cp *Checkpoint) {
				mu.Lock()
				last = cp
				mu.Unlock()
			},
		})
	if !errors.Is(err, ErrSessionLost) {
		t.Fatalf("err = %v, want ErrSessionLost", err)
	}
	if !strings.Contains(err.Error(), "job 8") {
		t.Fatalf("error does not name the last checkpointed job: %v", err)
	}
	if last == nil {
		t.Fatal("no checkpoint captured before the crash")
	}
	if last.Job() != 8 {
		t.Fatalf("last checkpoint at job %d, want 8 (the crash job)", last.Job())
	}

	payload, mac, key := last.Bundle()
	cp, err := CheckpointFromBundle(payload, mac, key)
	if err != nil {
		t.Fatalf("checkpoint bundle round-trip: %v", err)
	}
	if cp.SessionID() != last.SessionID() || cp.Job() != last.Job() || cp.Events() != last.Events() {
		t.Fatalf("round-tripped checkpoint differs: %s/%d/%d vs %s/%d/%d",
			cp.SessionID(), cp.Job(), cp.Events(), last.SessionID(), last.Job(), last.Events())
	}

	// A different client process picks the session back up.
	rec, stats, err := NewClient("heir", MaliG71MP8).RecordResumable(
		context.Background(), NewService(), MNIST(), ResilienceOptions{Resume: cp})
	if err != nil {
		t.Fatalf("resume from external checkpoint: %v", err)
	}
	if stats.Shim.ResyncEvents == 0 {
		t.Fatal("resumed session replayed no checkpointed events")
	}
	base, _, err := NewClient("mortal-base", MaliG71MP8).Record(NewService(), MNIST(), RecordOptions{})
	if err != nil {
		t.Fatal(err)
	}
	basePayload, _, _ := base.Bundle()
	stitched, _, _ := rec.Bundle()
	if !bytes.Equal(basePayload, stitched) {
		t.Fatal("externally resumed recording differs from an uninterrupted run")
	}
}

// TestResumableCheckpointTamper checks the checkpoint seal: any bit flip in
// the payload, MAC, or key yields ErrCheckpointCorrupt, and a checkpoint for
// the wrong workload or GPU is refused before a session is admitted.
func TestResumableCheckpointTamper(t *testing.T) {
	plan, err := ParseFaultPlan("vm-crash")
	if err != nil {
		t.Fatal(err)
	}
	var mu sync.Mutex
	var last *Checkpoint
	_, _, err = NewClient("doomed", MaliG71MP8).RecordResumable(
		context.Background(), NewService(), MNIST(), ResilienceOptions{
			Faults: plan, MaxResumes: -1,
			OnCheckpoint: func(cp *Checkpoint) {
				mu.Lock()
				last = cp
				mu.Unlock()
			},
		})
	if !errors.Is(err, ErrSessionLost) || last == nil {
		t.Fatalf("setup: err = %v, checkpoint = %v", err, last)
	}
	payload, mac, key := last.Bundle()

	flip := func(b []byte, i int) []byte {
		c := append([]byte(nil), b...)
		c[i] ^= 0x01
		return c
	}
	if _, err := CheckpointFromBundle(flip(payload, len(payload)/2), mac, key); !errors.Is(err, ErrCheckpointCorrupt) {
		t.Fatalf("tampered payload: err = %v, want ErrCheckpointCorrupt", err)
	}
	if _, err := CheckpointFromBundle(payload, flip(mac, 0), key); !errors.Is(err, ErrCheckpointCorrupt) {
		t.Fatalf("tampered MAC: err = %v, want ErrCheckpointCorrupt", err)
	}
	if _, err := CheckpointFromBundle(payload, mac, flip(key, 0)); !errors.Is(err, ErrCheckpointCorrupt) {
		t.Fatalf("wrong key: err = %v, want ErrCheckpointCorrupt", err)
	}
	if _, err := CheckpointFromBundle(payload, mac[:16], key); !errors.Is(err, ErrCheckpointCorrupt) {
		t.Fatalf("short MAC: err = %v, want ErrCheckpointCorrupt", err)
	}

	cp, err := CheckpointFromBundle(payload, mac, key)
	if err != nil {
		t.Fatal(err)
	}
	_, _, err = NewClient("wrong-model", MaliG71MP8).RecordResumable(
		context.Background(), NewService(), AlexNet(), ResilienceOptions{Resume: cp})
	if !errors.Is(err, ErrCheckpointCorrupt) {
		t.Fatalf("resume with wrong model: err = %v, want ErrCheckpointCorrupt", err)
	}
	_, _, err = NewClient("wrong-sku", MaliG72MP12).RecordResumable(
		context.Background(), NewService(), MNIST(), ResilienceOptions{Resume: cp})
	if !errors.Is(err, ErrSKUMismatch) {
		t.Fatalf("resume on wrong SKU: err = %v, want ErrSKUMismatch", err)
	}
}

// TestObsResilienceCounters checks the checkpoint/resume counters land in
// both the session scope and the service's fleet metrics exposition (the
// ISSUE acceptance: counters visible in Service.WriteMetrics output).
func TestObsResilienceCounters(t *testing.T) {
	svc := NewService()
	plan, err := ParseFaultPlan("vm-crash")
	if err != nil {
		t.Fatal(err)
	}
	scope := NewScope("chaos-session")
	_, stats, err := NewClient("obs-chaos", MaliG71MP8).RecordResumable(
		context.Background(), svc, MNIST(), ResilienceOptions{
			RecordOptions: RecordOptions{Obs: scope},
			Faults:        plan,
			OnCheckpoint:  func(*Checkpoint) {},
		})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Resumes != 1 {
		t.Fatalf("resumes = %d, want 1", stats.Resumes)
	}

	snap := scope.Snapshot()
	if got := snap.Counter(obs.MFaultsFired, obs.L("kind", "vm_crash")); got != 1 {
		t.Errorf("scope vm_crash faults = %d, want 1", got)
	}

	fleet := svc.Metrics()
	if got := fleet.Counter(obs.MFleetVMCrashes); got != 1 {
		t.Errorf("fleet VM crashes = %d, want 1", got)
	}
	if got := fleet.Counter(obs.MFleetResumes, obs.L("outcome", "resumed")); got != 1 {
		t.Errorf("fleet resumes = %d, want 1", got)
	}
	if got := fleet.Counter(obs.MCkptCheckpoints); got < 9 {
		t.Errorf("fleet checkpoints = %d, want >= 9 (jobs 0..8 before the crash)", got)
	}
	if got := fleet.Counter(obs.MCkptResyncEvents); got == 0 {
		t.Error("fleet resync events = 0, want > 0")
	}

	var buf bytes.Buffer
	if err := svc.WriteMetrics(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, name := range []string{
		obs.MFaultsFired, obs.MCkptCheckpoints, obs.MCkptBytes, obs.MCkptResyncEvents,
		obs.MResumeBackoff, obs.MFleetVMCrashes, obs.MFleetResumes,
	} {
		if !strings.Contains(out, name) {
			t.Errorf("fleet exposition lacks %s", name)
		}
	}
}

// TestObsResilienceGaveUp checks the give-up path: resumes disabled, the
// fleet records the abandoned session.
func TestObsResilienceGaveUp(t *testing.T) {
	svc := NewService()
	plan, err := ParseFaultPlan("outage")
	if err != nil {
		t.Fatal(err)
	}
	_, _, err = NewClient("obs-giveup", MaliG71MP8).RecordResumable(
		context.Background(), svc, MNIST(), ResilienceOptions{Faults: plan, MaxResumes: -1})
	if !errors.Is(err, ErrSessionLost) {
		t.Fatalf("err = %v, want ErrSessionLost", err)
	}
	fleet := svc.Metrics()
	if got := fleet.Counter(obs.MFleetResumes, obs.L("outcome", "gave_up")); got != 1 {
		t.Errorf("fleet gave_up resumes = %d, want 1", got)
	}
	if got := fleet.Counter(obs.MFleetVMCrashes); got != 1 {
		t.Errorf("fleet VM crashes = %d, want 1", got)
	}
}
