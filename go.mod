module gpurelay

go 1.22
