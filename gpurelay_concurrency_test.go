package gpurelay

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"
)

// waitForActiveVM polls until the service holds at least one live VM —
// i.e. a concurrently launched record session is past admission and mid
// recording. Record runs take hundreds of milliseconds of real time, so a
// millisecond poll has ample margin.
func waitForActiveVM(t *testing.T, svc *Service) {
	t.Helper()
	for deadline := time.Now().Add(10 * time.Second); svc.ActiveVMs() == 0; {
		if time.Now().After(deadline) {
			t.Fatal("no record session became active")
		}
		time.Sleep(time.Millisecond)
	}
}

// TestConcurrentRecordSharedWarmHistory is the headline concurrency test: 8
// clients record the same model in parallel against one service with a
// pool of 4 VMs. All must complete (the surplus queues for a slot), and
// every one of them must benefit from the speculation history the cold
// first session left in the service's shared store — strictly fewer
// blocking round trips than the cold run.
func TestConcurrentRecordSharedWarmHistory(t *testing.T) {
	svc := NewServiceWith(ServiceConfig{Capacity: 4, QueueLimit: 16})

	cold := NewClient("cold-phone", MaliG71MP8)
	_, coldStats, err := cold.Record(svc, MNIST(), RecordOptions{})
	if err != nil {
		t.Fatal(err)
	}

	const sessions = 8
	warm := make([]RecordStats, sessions)
	errs := make([]error, sessions)
	var wg sync.WaitGroup
	for i := 0; i < sessions; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			client := NewClient(fmt.Sprintf("warm-phone-%d", i), MaliG71MP8)
			rec, stats, err := client.Record(svc, MNIST(), RecordOptions{})
			if err != nil {
				errs[i] = err
				return
			}
			warm[i] = stats
			// Each recording must still replay on its own device.
			sess, err := client.NewReplaySession(rec)
			if err != nil {
				errs[i] = err
				return
			}
			if err := sess.SetInput(make([]float32, 28*28)); err != nil {
				errs[i] = err
				return
			}
			if _, err := sess.Run(); err != nil {
				errs[i] = err
			}
		}(i)
	}
	wg.Wait()

	for i, err := range errs {
		if err != nil {
			t.Fatalf("session %d: %v", i, err)
		}
	}
	if n := svc.ActiveVMs(); n != 0 {
		t.Fatalf("leaked VMs: ActiveVMs() = %d", n)
	}
	if n := svc.QueuedSessions(); n != 0 {
		t.Fatalf("leaked admissions: QueuedSessions() = %d", n)
	}
	for i, w := range warm {
		if w.Link.BlockingRTTs >= coldStats.Link.BlockingRTTs {
			t.Fatalf("session %d did not reuse warm history: %d blocking RTTs, cold run had %d",
				i, w.Link.BlockingRTTs, coldStats.Link.BlockingRTTs)
		}
		if w.Shim.AsyncCommits <= coldStats.Shim.AsyncCommits {
			t.Fatalf("session %d speculated %d commits, cold run %d",
				i, w.Shim.AsyncCommits, coldStats.Shim.AsyncCommits)
		}
	}
}

// TestRecordErrCapacity saturates a pool of one VM with no admission queue:
// while one session is mid-recording, a second admission must fail fast
// with ErrCapacity.
func TestRecordErrCapacity(t *testing.T) {
	svc := NewServiceWith(ServiceConfig{Capacity: 1, QueueLimit: -1})
	holder := NewClient("holder", MaliG71MP8)
	done := make(chan error, 1)
	go func() {
		_, _, err := holder.Record(svc, AlexNet(), RecordOptions{})
		done <- err
	}()
	waitForActiveVM(t, svc)

	other := NewClient("other", MaliG71MP8)
	_, _, err := other.Record(svc, MNIST(), RecordOptions{})
	if !errors.Is(err, ErrCapacity) {
		t.Fatalf("saturated record: %v, want ErrCapacity", err)
	}
	if err := <-done; err != nil {
		t.Fatalf("holder session: %v", err)
	}
	if n := svc.ActiveVMs(); n != 0 {
		t.Fatalf("ActiveVMs() = %d after sessions ended", n)
	}
}

// TestRecordErrSessionLimit: one client may hold only one concurrent
// session by default, even when the pool has room.
func TestRecordErrSessionLimit(t *testing.T) {
	svc := NewServiceWith(ServiceConfig{Capacity: 4, QueueLimit: -1})
	client := NewClient("busy-phone", MaliG71MP8)
	done := make(chan error, 1)
	go func() {
		_, _, err := client.Record(svc, AlexNet(), RecordOptions{})
		done <- err
	}()
	waitForActiveVM(t, svc)

	_, _, err := client.Record(svc, MNIST(), RecordOptions{})
	if !errors.Is(err, ErrSessionLimit) {
		t.Fatalf("second session for one client: %v, want ErrSessionLimit", err)
	}
	if err := <-done; err != nil {
		t.Fatalf("first session: %v", err)
	}
}

// TestRecordContextCancellation cancels a record session mid-flight: the
// call must return promptly with an error wrapping context.Canceled, and
// the session's VM must be released.
func TestRecordContextCancellation(t *testing.T) {
	svc := NewService()
	client := NewClient("cancel-phone", MaliG71MP8)
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, _, err := client.RecordContext(ctx, svc, AlexNet(), RecordOptions{})
		done <- err
	}()
	waitForActiveVM(t, svc)
	cancel()

	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("canceled record: %v, want context.Canceled", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("record did not return after cancellation")
	}
	if n := svc.ActiveVMs(); n != 0 {
		t.Fatalf("canceled session leaked its VM: ActiveVMs() = %d", n)
	}
}

// TestRecordContextDeadline: a deadline shorter than the session aborts it
// with context.DeadlineExceeded and no leaked VM.
func TestRecordContextDeadline(t *testing.T) {
	svc := NewService()
	client := NewClient("deadline-phone", MaliG71MP8)
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel()
	_, _, err := client.RecordContext(ctx, svc, AlexNet(), RecordOptions{})
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("deadlined record: %v, want context.DeadlineExceeded", err)
	}
	if n := svc.ActiveVMs(); n != 0 {
		t.Fatalf("deadlined session leaked its VM: ActiveVMs() = %d", n)
	}
}

// TestRecordContextPreCanceled: an already-dead context never launches a VM.
func TestRecordContextPreCanceled(t *testing.T) {
	svc := NewService()
	client := NewClient("dead-phone", MaliG71MP8)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, _, err := client.RecordContext(ctx, svc, MNIST(), RecordOptions{})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("pre-canceled record: %v", err)
	}
	if n := svc.ActiveVMs(); n != 0 {
		t.Fatalf("ActiveVMs() = %d", n)
	}
}

// TestHistoryOverrideStaysIsolated: an explicit RecordOptions.History must
// bypass the shared store (the §7.3 ablation contract) — a cold explicit
// history on a warm service still records cold.
func TestHistoryOverrideStaysIsolated(t *testing.T) {
	svc := NewService()
	client := NewClient("ablation-phone", MaliG71MP8)
	// Warm the service's shared store.
	if _, _, err := client.Record(svc, MNIST(), RecordOptions{}); err != nil {
		t.Fatal(err)
	}
	_, sharedWarm, err := client.Record(svc, MNIST(), RecordOptions{})
	if err != nil {
		t.Fatal(err)
	}
	_, coldOverride, err := client.Record(svc, MNIST(), RecordOptions{History: NewSpeculationHistory()})
	if err != nil {
		t.Fatal(err)
	}
	if coldOverride.Shim.AsyncCommits >= sharedWarm.Shim.AsyncCommits {
		t.Fatalf("explicit cold history speculated %d commits, shared warm store %d — override not isolated",
			coldOverride.Shim.AsyncCommits, sharedWarm.Shim.AsyncCommits)
	}
}

// TestSentinelErrors covers errors.Is across the layers: verification
// failures on bundles and cross-SKU replay rejection.
func TestSentinelErrors(t *testing.T) {
	client := NewClient("sentinel-phone", MaliG71MP8)
	svc := NewService()
	rec, _, err := client.Record(svc, MNIST(), RecordOptions{})
	if err != nil {
		t.Fatal(err)
	}

	payload, mac, key := rec.Bundle()
	if _, err := RecordingFromBundle(payload, mac[:16], key); !errors.Is(err, ErrBadRecording) {
		t.Fatalf("short MAC: %v, want ErrBadRecording", err)
	}
	tampered := append([]byte(nil), payload...)
	tampered[len(tampered)/2] ^= 0xFF
	if _, err := RecordingFromBundle(tampered, mac, key); !errors.Is(err, ErrBadRecording) {
		t.Fatalf("tampered payload: %v, want ErrBadRecording", err)
	}
	if _, err := RecordingFromBundle(payload, mac, []byte("wrong-key-0123456789abcdef012345")); !errors.Is(err, ErrBadRecording) {
		t.Fatalf("wrong key: %v, want ErrBadRecording", err)
	}

	other := NewClient("sentinel-g52", MaliG52MP2)
	if _, err := other.NewReplaySession(rec); !errors.Is(err, ErrSKUMismatch) {
		t.Fatalf("cross-SKU replay: %v, want ErrSKUMismatch", err)
	}
}
