// grtdiag implements the paper's §3.4 remote-debugging application of GR-T:
// it compares a subject device's recording against a reference recording of
// the same workload and SKU, and reports divergences (firmware returning
// different register values, control-flow differences, timing anomalies,
// truncated executions).
//
// Usage:
//
//	grtrecord -model mnist -o ref.grt
//	grtrecord -model mnist -o subject.grt
//	grtdiag -ref ref.grt -subject subject.grt
package main

import (
	"encoding/binary"
	"flag"
	"fmt"
	"io"
	"log"
	"os"

	"gpurelay/internal/diag"
	"gpurelay/internal/trace"
)

func readRecording(path string) (*trace.Recording, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	magic := make([]byte, 4)
	if _, err := io.ReadFull(f, magic); err != nil || string(magic) != "GRTB" {
		return nil, fmt.Errorf("%s is not a grtrecord bundle", path)
	}
	read := func() ([]byte, error) {
		var n uint32
		if err := binary.Read(f, binary.LittleEndian, &n); err != nil {
			return nil, err
		}
		b := make([]byte, n)
		_, err := io.ReadFull(f, b)
		return b, err
	}
	payload, err := read()
	if err != nil {
		return nil, err
	}
	mac, err := read()
	if err != nil {
		return nil, err
	}
	key, err := read()
	if err != nil {
		return nil, err
	}
	signed := &trace.Signed{Payload: payload}
	copy(signed.MAC[:], mac)
	return trace.Verify(signed, key)
}

func main() {
	refFlag := flag.String("ref", "", "reference recording bundle (known-good device)")
	subFlag := flag.String("subject", "", "subject recording bundle (device under diagnosis)")
	maxFlag := flag.Int("max", 32, "maximum divergences to report")
	flag.Parse()
	if *refFlag == "" || *subFlag == "" {
		log.Fatal("-ref and -subject are required")
	}
	ref, err := readRecording(*refFlag)
	if err != nil {
		log.Fatalf("reading reference: %v", err)
	}
	subject, err := readRecording(*subFlag)
	if err != nil {
		log.Fatalf("reading subject: %v", err)
	}
	fmt.Printf("reference: %s on product %#x (%d events)\n", ref.Workload, ref.ProductID, len(ref.Events))
	fmt.Printf("subject:   %s on product %#x (%d events)\n", subject.Workload, subject.ProductID, len(subject.Events))

	rep, err := diag.Compare(ref, subject, diag.Options{MaxDivergences: *maxFlag})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(rep.Render())
	if !rep.Healthy() {
		os.Exit(1)
	}
}
