// grtdiag is GR-T's diagnosis tool. Its original job is the paper's §3.4
// remote-debugging application — comparing a subject device's recording
// against a reference recording of the same workload and SKU — and it now
// also opens the observability artifacts the service and the fleet drills
// emit: flight-recorder journals, sealed diagnostic bundles, and fleet
// health reports.
//
// Usage:
//
//	grtdiag compare -ref ref.grt -subject subject.grt [-max 32]
//	grtdiag flight -in flight.jsonl [-n 50] [-session drill-0003] [-kind fault]
//	grtdiag bundle -in failure.grtd [-json]
//	grtdiag health -in FLEET_HEALTH.json
//
// The legacy flag-form invocation (grtdiag -ref ... -subject ...) still
// works and behaves exactly like the compare subcommand.
package main

import (
	"encoding/binary"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"os"

	"gpurelay/internal/audit"
	"gpurelay/internal/cloud"
	"gpurelay/internal/diag"
	"gpurelay/internal/obs"
	"gpurelay/internal/trace"
)

func readRecording(path string) (*trace.Recording, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	magic := make([]byte, 4)
	if _, err := io.ReadFull(f, magic); err != nil || string(magic) != "GRTB" {
		return nil, fmt.Errorf("%s is not a grtrecord bundle", path)
	}
	read := func() ([]byte, error) {
		var n uint32
		if err := binary.Read(f, binary.LittleEndian, &n); err != nil {
			return nil, err
		}
		b := make([]byte, n)
		_, err := io.ReadFull(f, b)
		return b, err
	}
	payload, err := read()
	if err != nil {
		return nil, err
	}
	mac, err := read()
	if err != nil {
		return nil, err
	}
	key, err := read()
	if err != nil {
		return nil, err
	}
	signed := &trace.Signed{Payload: payload}
	copy(signed.MAC[:], mac)
	return trace.Verify(signed, key)
}

func runCompare(args []string) {
	fs := flag.NewFlagSet("compare", flag.ExitOnError)
	refFlag := fs.String("ref", "", "reference recording bundle (known-good device)")
	subFlag := fs.String("subject", "", "subject recording bundle (device under diagnosis)")
	maxFlag := fs.Int("max", 32, "maximum divergences to report")
	fs.Parse(args)
	if *refFlag == "" || *subFlag == "" {
		log.Fatal("-ref and -subject are required")
	}
	ref, err := readRecording(*refFlag)
	if err != nil {
		log.Fatalf("reading reference: %v", err)
	}
	subject, err := readRecording(*subFlag)
	if err != nil {
		log.Fatalf("reading subject: %v", err)
	}
	fmt.Printf("reference: %s on product %#x (%d events)\n", ref.Workload, ref.ProductID, len(ref.Events))
	fmt.Printf("subject:   %s on product %#x (%d events)\n", subject.Workload, subject.ProductID, len(subject.Events))

	rep, err := diag.Compare(ref, subject, diag.Options{MaxDivergences: *maxFlag})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(rep.Render())
	if !rep.Healthy() {
		os.Exit(1)
	}
}

// runFlight pretty-prints a flight-recorder journal (the JSONL file
// grtrecord -flight-out or a fleet drill writes), optionally filtered by
// session and event kind, optionally limited to the newest n events.
func runFlight(args []string) {
	fs := flag.NewFlagSet("flight", flag.ExitOnError)
	inFlag := fs.String("in", "", "flight journal (JSON Lines); required")
	nFlag := fs.Int("n", 0, "show only the newest n events (0 = all)")
	sessFlag := fs.String("session", "", "show only this session's events")
	kindFlag := fs.String("kind", "", "show only events of this kind (admission, sync, fault, ...)")
	fs.Parse(args)
	if *inFlag == "" {
		log.Fatal("-in is required")
	}
	f, err := os.Open(*inFlag)
	if err != nil {
		log.Fatal(err)
	}
	defer f.Close()
	events, err := obs.ReadFlightJSONL(f)
	if err != nil {
		log.Fatal(err)
	}
	total := len(events)
	filtered := events[:0]
	for _, e := range events {
		if *sessFlag != "" && e.Session != *sessFlag {
			continue
		}
		if *kindFlag != "" && e.Kind != *kindFlag {
			continue
		}
		filtered = append(filtered, e)
	}
	events = filtered
	if *nFlag > 0 && len(events) > *nFlag {
		events = events[len(events)-*nFlag:]
	}
	for _, e := range events {
		fmt.Println(e)
	}
	fmt.Printf("%d event(s) shown (%d in journal)\n", len(events), total)
}

// runBundle opens a sealed diagnostic bundle (GRTD file), verifies its seal,
// and pretty-prints it. A bad seal exits 2 — the bundle is evidence, and
// evidence that fails authentication must not be presented as intact.
func runBundle(args []string) {
	fs := flag.NewFlagSet("bundle", flag.ExitOnError)
	inFlag := fs.String("in", "", "sealed diagnostic bundle (GRTD file); required")
	jsonFlag := fs.Bool("json", false, "print the verified payload as JSON instead of pretty text")
	fs.Parse(args)
	if *inFlag == "" {
		log.Fatal("-in is required")
	}
	f, err := os.Open(*inFlag)
	if err != nil {
		log.Fatal(err)
	}
	defer f.Close()
	payload, mac, key, err := audit.DecodeBundleFile(f)
	if err != nil {
		log.Fatal(err)
	}
	b, err := audit.OpenBundle(payload, mac, key)
	if err != nil {
		fmt.Fprintf(os.Stderr, "grtdiag: bundle failed verification: %v\n", err)
		os.Exit(2)
	}
	if *jsonFlag {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(b); err != nil {
			log.Fatal(err)
		}
		return
	}
	fmt.Print(b.Render())
}

// runHealth pretty-prints a grt-health/1 fleet health report (grtbench
// -health-out, or Service.Health written as JSON). Exits 1 when the fleet is
// unhealthy so scripts can gate on it.
func runHealth(args []string) {
	fs := flag.NewFlagSet("health", flag.ExitOnError)
	inFlag := fs.String("in", "", "fleet health report (grt-health/1 JSON); required")
	fs.Parse(args)
	if *inFlag == "" {
		log.Fatal("-in is required")
	}
	data, err := os.ReadFile(*inFlag)
	if err != nil {
		log.Fatal(err)
	}
	rep, err := cloud.ParseHealthReport(data)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(rep.Render())
	if rep.State == cloud.Unhealthy {
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintf(os.Stderr, `usage:
  grtdiag compare -ref ref.grt -subject subject.grt [-max 32]
  grtdiag flight -in flight.jsonl [-n 50] [-session id] [-kind kind]
  grtdiag bundle -in failure.grtd [-json]
  grtdiag health -in FLEET_HEALTH.json
`)
	os.Exit(2)
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("grtdiag: ")
	if len(os.Args) < 2 {
		usage()
	}
	switch os.Args[1] {
	case "compare":
		runCompare(os.Args[2:])
	case "flight":
		runFlight(os.Args[2:])
	case "bundle":
		runBundle(os.Args[2:])
	case "health":
		runHealth(os.Args[2:])
	default:
		if os.Args[1][0] == '-' {
			// Legacy flag-form invocation: treat as compare.
			runCompare(os.Args[1:])
			return
		}
		usage()
	}
}
