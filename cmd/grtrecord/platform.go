package main

import (
	"context"
	"fmt"
	"os"

	"gpurelay"
	"gpurelay/internal/platform"
	"gpurelay/internal/record"
)

// platformOpts is the engine-hosted recording configuration: -gpus sessions
// built by the platform builder, run on the -engine discrete-event engine.
type platformOpts struct {
	engine  string // "serial" | "parallel"
	gpus    int
	seed    uint64
	model   *gpurelay.Model
	sku     *gpurelay.SKU
	network gpurelay.Network
	variant gpurelay.Variant
	out     string
}

// runPlatform records opts.gpus sessions, one GPU each, on one discrete-event
// engine, and writes the per-GPU recordings as one bundle. For one GPU the
// bundle is wire-identical to the classic grtrecord layout; for N it is the
// "GRTP" container grtreplay replays per GPU. Session keys are derived from
// -seed (deterministically, so a rerun re-creates the identical bundle); as
// with the classic path, bundling keys is a demo-CLI convenience only.
func runPlatform(opts platformOpts) error {
	b := platform.NewBuilder().WithNumGPU(opts.gpus)
	if opts.engine == "parallel" {
		b = b.WithParallelEngine()
	} else {
		b = b.WithSerialEngine()
	}
	p := b.Build()

	cfgs := make([]record.Config, opts.gpus)
	for i := range cfgs {
		cfgs[i] = record.Config{
			Variant: opts.variant, Model: opts.model, SKU: opts.sku,
			Network:               opts.network,
			SessionKey:            platform.SessionKey(opts.seed, i),
			ClientSeed:            opts.seed*1_000_003 + uint64(i)*7 + 1,
			InjectMispredictionAt: -1,
			SessionID:             fmt.Sprintf("gpu-%02d", i),
		}
	}
	fmt.Printf("recording %s on %d× %s over %s with %v (%s engine)...\n",
		opts.model.Name, opts.gpus, opts.sku.Name, opts.network.Name, opts.variant, opts.engine)
	results, err := p.RecordAll(context.Background(), cfgs)
	if err != nil {
		return err
	}
	for i, res := range results {
		fmt.Printf("gpu %2d: %.1f s recording delay (virtual), %d GPU jobs, %.2f MB memory sync\n",
			i, res.Stats.RecordingDelay.Seconds(), res.Stats.Jobs,
			float64(res.Stats.MemSyncBytes)/1e6)
	}
	fmt.Printf("engine: %d events over %.1f s of virtual time\n",
		p.Engine().Events(), p.Engine().Now().Seconds())

	if opts.out == "" {
		return nil
	}
	entries := make([]platform.Entry, len(results))
	for i, res := range results {
		entries[i] = platform.Entry{
			Payload: res.Signed.Payload,
			MAC:     res.Signed.MAC[:],
			Key:     platform.SessionKey(opts.seed, i),
		}
	}
	f, err := os.Create(opts.out)
	if err != nil {
		return err
	}
	if err := platform.WriteBundle(f, entries); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	fmt.Printf("wrote %d-GPU recording bundle to %s\n", len(entries), opts.out)
	return nil
}
