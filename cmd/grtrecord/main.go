// grtrecord runs one GR-T record session: a simulated client device asks the
// cloud service to dry run a workload's GPU stack against the client's GPU,
// and saves the signed recording to a file for grtreplay.
//
// Usage:
//
//	grtrecord -model mnist -sku g71 -network wifi -variant oursmds -o mnist.grt
//
// Multi-GPU: -gpus records N sessions, one GPU each, on one discrete-event
// engine (-engine parallel uses all host cores; recordings stay byte-identical
// to -engine serial), and writes them as one bundle:
//
//	grtrecord -model mnist -gpus 4 -engine parallel -o fleet.grt
//
// Resilience: -faults injects a deterministic chaos plan, -ckpt saves the
// latest job-boundary checkpoint, and -resume continues a lost session from
// a saved checkpoint:
//
//	grtrecord -model mnist -faults outage -ckpt mnist.grtc -o mnist.grt
//	grtrecord -model mnist -resume mnist.grtc -o mnist.grt
//
// Checkpoint cost: -ckpt-mode incremental switches the resumable session to
// epoch-chained delta captures (each capture covers only the jobs since the
// previous epoch, staged at one job boundary and validated at the next), and
// -ckpt-cadence spaces captures every n completed jobs:
//
//	grtrecord -model vgg16 -ckpt vgg.grtc -ckpt-mode incremental -ckpt-cadence 4 -o vgg.grt
//
// Inconsistent checkpoint-tuning flags (e.g. -ckpt-cadence without -ckpt)
// are rejected with exit code 2 and a single-line JSON report on stderr
// ({"rejected":true,"stage":"flags","reason":...}), matching grtbench.
//
// Cache-first: -cached derives the content-addressed cache key (SKU, stack,
// workload, input shape) before admission and serves a store hit with zero
// VM time; -cache-dir persists the store, so a rerun serves from disk:
//
//	grtrecord -model mnist -cached -cache-dir /tmp/grtcache -o mnist.grt
package main

import (
	"context"
	"encoding/binary"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"strings"

	"gpurelay"
)

// rejectFlags prints one machine-readable JSON line to stderr and exits 2:
// the invocation, not the environment, is at fault. Same schema and exit
// code as grtbench's flag rejection.
func rejectFlags(reason, msg string) {
	line, err := json.Marshal(struct {
		Rejected bool   `json:"rejected"`
		Stage    string `json:"stage"`
		Reason   string `json:"reason"`
		Error    string `json:"error"`
	}{Rejected: true, Stage: "flags", Reason: reason, Error: msg})
	if err != nil {
		fmt.Fprintf(os.Stderr, `{"rejected":true,"stage":"flags","reason":%q}`+"\n", reason)
		os.Exit(2)
	}
	fmt.Fprintln(os.Stderr, string(line))
	os.Exit(2)
}

// rejectPlan mirrors rejectFlags for -faults spec errors: stage
// "fault-plan", reason from the parser's stable machine-readable token
// (e.g. "unknown_kind"), exit code 2.
func rejectPlan(err error) {
	reason := "bad_plan"
	var pe *gpurelay.FaultPlanError
	if errors.As(err, &pe) {
		reason = pe.Reason
	}
	line, jerr := json.Marshal(struct {
		Rejected bool   `json:"rejected"`
		Stage    string `json:"stage"`
		Reason   string `json:"reason"`
		Error    string `json:"error"`
	}{Rejected: true, Stage: "fault-plan", Reason: reason, Error: err.Error()})
	if jerr != nil {
		fmt.Fprintf(os.Stderr, `{"rejected":true,"stage":"fault-plan","reason":%q}`+"\n", reason)
		os.Exit(2)
	}
	fmt.Fprintln(os.Stderr, string(line))
	os.Exit(2)
}

func modelByName(name string) (*gpurelay.Model, error) {
	switch strings.ToLower(name) {
	case "mnist":
		return gpurelay.MNIST(), nil
	case "alexnet":
		return gpurelay.AlexNet(), nil
	case "mobilenet":
		return gpurelay.MobileNet(), nil
	case "squeezenet":
		return gpurelay.SqueezeNet(), nil
	case "resnet12":
		return gpurelay.ResNet12(), nil
	case "vgg16":
		return gpurelay.VGG16(), nil
	}
	return nil, fmt.Errorf("unknown model %q (mnist|alexnet|mobilenet|squeezenet|resnet12|vgg16)", name)
}

func skuByName(name string) (*gpurelay.SKU, error) {
	switch strings.ToLower(name) {
	case "g71", "g71mp8":
		return gpurelay.MaliG71MP8, nil
	case "g72", "g72mp12":
		return gpurelay.MaliG72MP12, nil
	case "g52", "g52mp2":
		return gpurelay.MaliG52MP2, nil
	case "g76", "g76mp10":
		return gpurelay.MaliG76MP10, nil
	}
	return nil, fmt.Errorf("unknown SKU %q (g71|g72|g52|g76)", name)
}

func variantByName(name string) (gpurelay.Variant, error) {
	switch strings.ToLower(name) {
	case "naive":
		return gpurelay.Naive, nil
	case "oursm":
		return gpurelay.OursM, nil
	case "oursmd":
		return gpurelay.OursMD, nil
	case "oursmds", "":
		return gpurelay.OursMDS, nil
	}
	return 0, fmt.Errorf("unknown variant %q (naive|oursm|oursmd|oursmds)", name)
}

func main() {
	modelFlag := flag.String("model", "mnist", "workload: mnist|alexnet|mobilenet|squeezenet|resnet12|vgg16")
	skuFlag := flag.String("sku", "g71", "client GPU SKU: g71|g72|g52|g76")
	netFlag := flag.String("network", "wifi", "network condition: wifi|cellular")
	variantFlag := flag.String("variant", "oursmds", "recorder: naive|oursm|oursmd|oursmds")
	outFlag := flag.String("o", "", "write the recording bundle to this file (for grtreplay)")
	metricsFlag := flag.String("metrics", "", "write the session's metrics in Prometheus text format to this file (\"-\" for stdout)")
	traceFlag := flag.String("trace-out", "", "write the session's phase timeline as Chrome trace JSON to this file (load in chrome://tracing or Perfetto)")
	faultsFlag := flag.String("faults", "", "inject a deterministic fault plan: a preset ("+
		strings.Join(gpurelay.FaultPresets(), "|")+") or a spec like loss@200ms+1s:15,crash@job8")
	resumeFlag := flag.String("resume", "", "resume a lost session from this checkpoint file")
	ckptFlag := flag.String("ckpt", "", "keep the latest job-boundary checkpoint in this file (enables resumable recording)")
	maxResumesFlag := flag.Int("max-resumes", 0, "automatic resumes of a lost session before giving up (0 = default 3, negative = never)")
	ckptModeFlag := flag.String("ckpt-mode", "full", "with -ckpt: checkpoint capture strategy: full (whole session every capture) | incremental (epoch-chained deltas, staged concurrently with execution)")
	ckptCadenceFlag := flag.Int("ckpt-cadence", 0, "with -ckpt: completed jobs between checkpoint captures (0 = every job)")
	flightFlag := flag.String("flight-out", "", "write the service's flight-recorder journal (JSON Lines, for grtdiag flight) to this file (\"-\" for stdout); written on success and on failure")
	bundleOutFlag := flag.String("bundle-out", "", "on failure, write the sealed diagnostic bundle (GRTD, for grtdiag bundle) to this file before exiting")
	cachedFlag := flag.Bool("cached", false, "serve through the service's content-addressed recording cache: a hit returns the stored sealed recording with zero VM time, a miss records once and publishes")
	cacheDirFlag := flag.String("cache-dir", "", "with -cached: persistent on-disk cache tier; a rerun with the same model/SKU serves from disk (seal re-verified on load)")
	engineFlag := flag.String("engine", "serial", "discrete-event engine hosting the session(s): serial|parallel")
	gpusFlag := flag.Int("gpus", 1, "number of GPUs (one record session each, sharing one engine)")
	seedFlag := flag.Uint64("seed", 1, "session key / client seed derivation seed (with -gpus > 1 or -engine parallel)")
	flag.Parse()

	// The checkpoint-tuning flags are validated first, machine-readably
	// (exit 2 + one JSON line on stderr): a pipeline driving resumable
	// recordings can triage a misconfiguration without parsing error prose.
	set := map[string]bool{}
	flag.Visit(func(f *flag.Flag) { set[f.Name] = true })
	var ckptMode gpurelay.CkptMode
	switch strings.ToLower(*ckptModeFlag) {
	case "full":
		ckptMode = gpurelay.CkptFull
	case "incremental":
		ckptMode = gpurelay.CkptIncremental
	default:
		rejectFlags("bad_ckpt_mode", fmt.Sprintf("unknown checkpoint mode %q (full|incremental)", *ckptModeFlag))
	}
	if *ckptCadenceFlag < 0 {
		rejectFlags("bad_ckpt_cadence", fmt.Sprintf("-ckpt-cadence %d: captures cannot run less often than never", *ckptCadenceFlag))
	}
	if (set["ckpt-mode"] || set["ckpt-cadence"]) && *ckptFlag == "" {
		rejectFlags("needs_ckpt", "-ckpt-mode/-ckpt-cadence tune resumable checkpointing and need -ckpt")
	}

	model, err := modelByName(*modelFlag)
	if err != nil {
		log.Fatal(err)
	}
	sku, err := skuByName(*skuFlag)
	if err != nil {
		log.Fatal(err)
	}
	variant, err := variantByName(*variantFlag)
	if err != nil {
		log.Fatal(err)
	}
	network := gpurelay.WiFi
	if strings.ToLower(*netFlag) == "cellular" {
		network = gpurelay.Cellular
	}

	if *engineFlag != "serial" && *engineFlag != "parallel" {
		log.Fatalf("unknown engine %q (serial|parallel)", *engineFlag)
	}
	if *gpusFlag < 1 {
		log.Fatalf("-gpus %d: need at least one GPU", *gpusFlag)
	}
	if *gpusFlag > 1 || *engineFlag == "parallel" {
		// Engine-hosted recording: platform-built sessions on a shared
		// discrete-event engine. Resilience and telemetry flags belong to
		// the classic single-session path.
		for name, set := range map[string]bool{
			"-faults": *faultsFlag != "", "-resume": *resumeFlag != "",
			"-ckpt": *ckptFlag != "", "-max-resumes": *maxResumesFlag != 0,
			"-metrics": *metricsFlag != "", "-trace-out": *traceFlag != "",
			"-flight-out": *flightFlag != "", "-bundle-out": *bundleOutFlag != "",
		} {
			if set {
				log.Fatalf("%s is not supported with -gpus > 1 or -engine parallel", name)
			}
		}
		if err := runPlatform(platformOpts{
			engine: *engineFlag, gpus: *gpusFlag, seed: *seedFlag,
			model: model, sku: sku, network: network, variant: variant,
			out: *outFlag,
		}); err != nil {
			log.Fatalf("record: %v", err)
		}
		return
	}

	if *cacheDirFlag != "" && !*cachedFlag {
		log.Fatal("-cache-dir needs -cached")
	}
	if *cachedFlag {
		for name, set := range map[string]bool{
			"-faults": *faultsFlag != "", "-resume": *resumeFlag != "",
			"-ckpt": *ckptFlag != "", "-max-resumes": *maxResumesFlag != 0,
		} {
			if set {
				log.Fatalf("%s records a live session; it cannot combine with -cached", name)
			}
		}
	}
	client := gpurelay.NewClient("grtrecord-cli", sku)
	svc := gpurelay.NewServiceWith(gpurelay.ServiceConfig{CacheDir: *cacheDirFlag})
	var scope *gpurelay.Scope
	if *metricsFlag != "" || *traceFlag != "" || *flightFlag != "" {
		// A scope is what routes the session's own events (sync phases,
		// speculation commits, checkpoints) into the service's flight
		// recorder, so -flight-out implies one.
		scope = gpurelay.NewScope(fmt.Sprintf("record/%s/%v/%s", model.Name, variant, network.Name))
	}
	// fail writes the observability artifacts a failed session leaves behind
	// — the flight journal and the sealed diagnostic bundle — then exits.
	fail := func(format string, args ...any) {
		writeFlight(svc, *flightFlag)
		writeDiagBundle(svc, *bundleOutFlag)
		log.Fatalf(format, args...)
	}
	fmt.Printf("recording %s on %s over %s with %v...\n", model.Name, sku.Name, network.Name, variant)
	recOpts := gpurelay.RecordOptions{Variant: variant, Network: network, Obs: scope}

	var rec *gpurelay.Recording
	var stats gpurelay.RecordStats
	if resilient := *faultsFlag != "" || *resumeFlag != "" || *ckptFlag != "" || *maxResumesFlag != 0; resilient {
		opts := gpurelay.ResilienceOptions{
			RecordOptions: recOpts, MaxResumes: *maxResumesFlag,
			CkptMode: ckptMode, CkptCadence: *ckptCadenceFlag,
		}
		if *faultsFlag != "" {
			plan, err := gpurelay.ParseFaultPlan(*faultsFlag)
			if err != nil {
				rejectPlan(err)
			}
			opts.Faults = plan
			fmt.Printf("injecting %v\n", plan)
		}
		if *resumeFlag != "" {
			cp, err := readCheckpoint(*resumeFlag)
			if err != nil {
				log.Fatalf("loading checkpoint %s: %v", *resumeFlag, err)
			}
			opts.Resume = cp
			fmt.Printf("resuming session %s from job %d (%d events)\n", cp.SessionID(), cp.Job(), cp.Events())
		}
		var lastCkpt *gpurelay.Checkpoint
		if *ckptFlag != "" {
			opts.OnCheckpoint = func(cp *gpurelay.Checkpoint) { lastCkpt = cp }
		}
		rec, stats, err = client.RecordResumable(context.Background(), svc, model, opts)
		if lastCkpt != nil {
			if werr := writeCheckpoint(*ckptFlag, lastCkpt); werr != nil {
				log.Printf("writing checkpoint to %s: %v", *ckptFlag, werr)
			} else if err != nil {
				fmt.Printf("session %s failed; last checkpoint: job %d, saved to %s\n",
					lastCkpt.SessionID(), lastCkpt.Job(), *ckptFlag)
				fmt.Printf("rerun with -resume %s to continue\n", *ckptFlag)
			}
		}
		if err != nil {
			fail("record: %v", err)
		}
		if stats.Resumes > 0 {
			fmt.Printf("survived %d session loss(es) via checkpoint resume\n", stats.Resumes)
		}
	} else if *cachedFlag {
		var outcome gpurelay.CacheOutcome
		rec, outcome, stats, err = client.RecordCached(svc, model, recOpts)
		if err != nil {
			fail("record: %v", err)
		}
		switch outcome {
		case gpurelay.CacheHit:
			fmt.Println("served from the recording cache (zero VM time; stats below are the hit's, i.e. none)")
		case gpurelay.CacheRecorded:
			fmt.Println("cache miss: recorded once and published to the store")
		case gpurelay.CacheCoalesced:
			fmt.Println("coalesced onto a concurrent record of the same cache key")
		}
	} else {
		rec, stats, err = client.Record(svc, model, recOpts)
		if err != nil {
			fail("record: %v", err)
		}
	}

	fmt.Printf("recording delay:     %.1f s (virtual)\n", stats.RecordingDelay.Seconds())
	fmt.Printf("GPU jobs:            %d\n", stats.Jobs)
	fmt.Printf("register accesses:   %d (%.1f per commit)\n", stats.Shim.RegAccesses, stats.RegAccessesPerCommit)
	fmt.Printf("blocking round trips:%d (plus %d hidden by speculation)\n",
		stats.Link.BlockingRTTs, stats.Link.AsyncRTTs)
	fmt.Printf("commits:             %d total, %d speculated, %d mispredicted\n",
		stats.Shim.Commits, stats.Shim.AsyncCommits, stats.Shim.Mispredictions)
	fmt.Printf("memory sync traffic: %.2f MB\n", float64(stats.MemSyncBytes)/1e6)
	if stats.GPUThrottled > 0 {
		fmt.Printf("GPU throttled:       %v (thermal windows; billed at the throttled draw)\n", stats.GPUThrottled)
	}
	fmt.Printf("client energy:       %.2f J\n", float64(stats.Energy))

	if *outFlag != "" {
		if err := writeBundle(*outFlag, rec); err != nil {
			log.Fatalf("writing %s: %v", *outFlag, err)
		}
		fmt.Printf("wrote recording bundle to %s\n", *outFlag)
	}
	if *metricsFlag != "" {
		if err := writeOutput(*metricsFlag, stats.Obs.WritePrometheus); err != nil {
			log.Fatalf("writing metrics to %s: %v", *metricsFlag, err)
		}
		if *metricsFlag != "-" {
			fmt.Printf("wrote session metrics to %s\n", *metricsFlag)
		}
	}
	if *traceFlag != "" {
		if err := writeOutput(*traceFlag, scope.WriteChromeTrace); err != nil {
			log.Fatalf("writing trace to %s: %v", *traceFlag, err)
		}
		if *traceFlag != "-" {
			fmt.Printf("wrote session timeline to %s (%d spans)\n", *traceFlag, len(scope.Spans()))
		}
	}
	writeFlight(svc, *flightFlag)
}

// writeFlight dumps the service's flight-recorder journal as JSON Lines.
// It runs on success and on failure — the journal is most valuable when the
// session just died.
func writeFlight(svc *gpurelay.Service, path string) {
	if path == "" {
		return
	}
	if err := writeOutput(path, svc.WriteFlight); err != nil {
		fmt.Fprintf(os.Stderr, "grtrecord: writing flight journal to %s: %v\n", path, err)
		return
	}
	if path != "-" {
		fmt.Printf("wrote flight journal to %s (%d events)\n", path, len(svc.FlightEvents()))
	}
}

// writeDiagBundle saves the newest sealed diagnostic bundle the service
// captured, if any, so a failed run leaves verifiable evidence behind
// (open it with grtdiag bundle -in <path>).
func writeDiagBundle(svc *gpurelay.Service, path string) {
	if path == "" {
		return
	}
	sb, ok := svc.LastDiagBundle()
	if !ok {
		fmt.Fprintln(os.Stderr, "grtrecord: no diagnostic bundle was captured")
		return
	}
	err := writeOutput(path, func(w io.Writer) error {
		return gpurelay.EncodeDiagBundle(w, sb, svc.BundleKey())
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "grtrecord: writing diagnostic bundle to %s: %v\n", path, err)
		return
	}
	fmt.Fprintf(os.Stderr, "grtrecord: wrote sealed diagnostic bundle to %s\n", path)
}

// writeOutput writes via fn to path, or to stdout when path is "-".
func writeOutput(path string, fn func(io.Writer) error) error {
	if path == "-" {
		return fn(os.Stdout)
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := fn(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// writeBundle serializes a recording for the demo CLIs. NOTE: it bundles the
// session key so grtreplay can verify the signature; a real deployment keeps
// that key in the TEE's secure storage.
func writeBundle(path string, rec *gpurelay.Recording) error {
	payload, mac, key := rec.Bundle()
	return writeChunks(path, "GRTB", payload, mac, key)
}

// writeCheckpoint saves a sealed checkpoint, same layout as a recording
// bundle under a "GRTC" magic (and the same key-bundling caveat).
func writeCheckpoint(path string, cp *gpurelay.Checkpoint) error {
	payload, mac, key := cp.Bundle()
	return writeChunks(path, "GRTC", payload, mac, key)
}

func readCheckpoint(path string) (*gpurelay.Checkpoint, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	magic := make([]byte, 4)
	if _, err := io.ReadFull(f, magic); err != nil || string(magic) != "GRTC" {
		return nil, fmt.Errorf("%s is not a grtrecord checkpoint", path)
	}
	read := func() ([]byte, error) {
		var n uint32
		if err := binary.Read(f, binary.LittleEndian, &n); err != nil {
			return nil, err
		}
		b := make([]byte, n)
		_, err := io.ReadFull(f, b)
		return b, err
	}
	payload, err := read()
	if err != nil {
		return nil, err
	}
	mac, err := read()
	if err != nil {
		return nil, err
	}
	key, err := read()
	if err != nil {
		return nil, err
	}
	return gpurelay.CheckpointFromBundle(payload, mac, key)
}

func writeChunks(path, magic string, chunks ...[]byte) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if _, err := f.WriteString(magic); err != nil {
		return err
	}
	for _, b := range chunks {
		if err := binary.Write(f, binary.LittleEndian, uint32(len(b))); err != nil {
			return err
		}
		if _, err := f.Write(b); err != nil {
			return err
		}
	}
	return nil
}
