// grtreplay replays a recording bundle produced by grtrecord inside the
// simulated TEE, on a device of the matching GPU SKU, with synthetic
// parameters and input.
//
// Usage:
//
//	grtreplay -recording mnist.grt -sku g71 -n 3
//
// -compare replays a second bundle on identical inputs and fails unless the
// two recordings are byte-identical and produce identical outputs — the
// check that a resumed session's stitched recording (grtrecord -resume)
// matches an uninterrupted one.
//
// -audit verifies and structurally audits the bundle without replaying it.
//
// A bundle that fails verification or auditing is rejected with exit code 2
// and a single-line JSON report on stderr carrying a stable machine-readable
// reason ({"rejected":true,"stage":...,"reason":...,"fingerprint":...}), so
// pipelines can triage rejections without parsing error prose. Operational
// failures (bad flags, unreadable files) keep exit code 1.
package main

import (
	"bytes"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"strings"

	"gpurelay"
	"gpurelay/internal/audit"
	"gpurelay/internal/platform"
	"gpurelay/internal/trace"
)

// rejection is the machine-readable report grtreplay emits when a bundle is
// refused at the recording trust boundary.
type rejection struct {
	Rejected    bool   `json:"rejected"`
	File        string `json:"file"`
	Stage       string `json:"stage"`  // verify|audit|session|replay|compare
	Reason      string `json:"reason"` // stable token: bad_recording|audit|sku_mismatch|...
	Fingerprint string `json:"fingerprint"`
	Error       string `json:"error"`
	// Diags lists every structural-audit violation ("check: detail"), when
	// the rejection came from the auditor.
	Diags []string `json:"diags,omitempty"`
}

// reject prints the rejection report to stderr as one JSON line and exits
// with code 2: the bundle, not the environment, is at fault.
func reject(file, stage string, payload []byte, err error) {
	rep := rejection{
		Rejected:    true,
		File:        file,
		Stage:       stage,
		Reason:      audit.Reason(err),
		Fingerprint: audit.Fingerprint(payload),
		Error:       err.Error(),
	}
	var ae *trace.AuditError
	if errors.As(err, &ae) {
		for _, d := range ae.Diags {
			rep.Diags = append(rep.Diags, d.String())
		}
		if ae.Truncated {
			rep.Diags = append(rep.Diags, "... diagnostics truncated")
		}
	}
	line, jerr := json.Marshal(rep)
	if jerr != nil {
		fmt.Fprintf(os.Stderr, `{"rejected":true,"stage":%q,"reason":%q}`+"\n", stage, rep.Reason)
		os.Exit(2)
	}
	fmt.Fprintln(os.Stderr, string(line))
	os.Exit(2)
}

// readBundle reads either bundle layout — classic single-GPU "GRTB" or the
// multi-GPU "GRTP" container — as per-GPU entries (payload, MAC, key each).
func readBundle(path string) ([]platform.Entry, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return platform.ReadBundle(f)
}

// readSingle reads a bundle that must hold exactly one recording (the
// classic replay and compare paths).
func readSingle(path string) (payload, mac, key []byte, err error) {
	entries, err := readBundle(path)
	if err != nil {
		return nil, nil, nil, err
	}
	if len(entries) != 1 {
		return nil, nil, nil, fmt.Errorf("%s holds %d per-GPU recordings; expected a single-GPU bundle",
			path, len(entries))
	}
	return entries[0].Payload, entries[0].MAC, entries[0].Key, nil
}

func main() {
	recFlag := flag.String("recording", "", "recording bundle from grtrecord")
	skuFlag := flag.String("sku", "g71", "device GPU SKU: g71|g72|g52|g76")
	nFlag := flag.Int("n", 1, "number of replays")
	metricsFlag := flag.String("metrics", "", "write the complete metrics registry (ingest, replay, fleet counters) in Prometheus text format to this file (\"-\" for stdout)")
	traceFlag := flag.String("trace-out", "", "write the replay timeline as Chrome trace JSON to this file (load in chrome://tracing or Perfetto)")
	bundleOutFlag := flag.String("bundle-out", "", "on rejection, write the sealed diagnostic bundle (GRTD) to this file before exiting")
	compareFlag := flag.String("compare", "", "second recording bundle: verify both are byte-identical and replay to identical outputs")
	auditFlag := flag.Bool("audit", false, "verify and structurally audit the bundle without replaying; exit 2 with a JSON report if it is rejected")
	fingerprintFlag := flag.Bool("fingerprint", false, "print the accepted recording's content address (the truncated SHA-256 the recording cache and quarantine key on)")
	engineFlag := flag.String("engine", "serial", "discrete-event engine hosting the replay(s): serial|parallel")
	gpusFlag := flag.Int("gpus", 1, "GPUs to replay on (must match the bundle; 1 adapts to the bundle's GPU count)")
	flag.Parse()
	if *recFlag == "" {
		log.Fatal("-recording is required")
	}
	if *engineFlag != "serial" && *engineFlag != "parallel" {
		log.Fatalf("unknown engine %q (serial|parallel)", *engineFlag)
	}

	var sku *gpurelay.SKU
	switch strings.ToLower(*skuFlag) {
	case "g71", "g71mp8":
		sku = gpurelay.MaliG71MP8
	case "g72", "g72mp12":
		sku = gpurelay.MaliG72MP12
	case "g52", "g52mp2":
		sku = gpurelay.MaliG52MP2
	case "g76", "g76mp10":
		sku = gpurelay.MaliG76MP10
	default:
		log.Fatalf("unknown SKU %q", *skuFlag)
	}

	entries, err := readBundle(*recFlag)
	if err != nil {
		log.Fatal(err)
	}
	if len(entries) > 1 || *gpusFlag > 1 || *engineFlag == "parallel" {
		if *gpusFlag != 1 && *gpusFlag != len(entries) {
			log.Fatalf("-gpus %d, but %s holds %d per-GPU recording(s)", *gpusFlag, *recFlag, len(entries))
		}
		if *compareFlag != "" || *auditFlag || *fingerprintFlag || *metricsFlag != "" || *traceFlag != "" || *bundleOutFlag != "" {
			log.Fatal("-compare, -audit, -fingerprint, -metrics, -trace-out and -bundle-out work on the classic single-GPU replay path only")
		}
		runPlatformReplay(entries, sku, *engineFlag, *nFlag)
		return
	}
	payload, mac, key := entries[0].Payload, entries[0].MAC, entries[0].Key
	// The classic path routes the recording through the service's ingestion
	// boundary (MAC verify → bounded parse → structural audit), so the
	// grt_ingest_* counters, quarantine, and — on rejection — a sealed
	// diagnostic bundle all populate exactly as they would on a real service.
	svc := gpurelay.NewService()
	rec, err := svc.IngestRecording(payload, mac, key)
	if err != nil {
		writeRejectBundle(svc, *bundleOutFlag)
		reject(*recFlag, "ingest", payload, err)
	}
	fmt.Printf("verified recording of %s for GPU product %#x\n", rec.Workload, rec.ProductID)
	if *fingerprintFlag {
		fmt.Printf("fingerprint: %s\n", audit.Fingerprint(payload))
	}

	if *auditFlag {
		// Ingestion already ran the structural audit; reaching here means
		// the bundle passed it.
		fmt.Printf("audit: %s passed all structural checks\n", *recFlag)
		if *compareFlag != "" {
			payload2, mac2, key2, err := readSingle(*compareFlag)
			if err != nil {
				log.Fatal(err)
			}
			if _, err := svc.IngestRecording(payload2, mac2, key2); err != nil {
				writeRejectBundle(svc, *bundleOutFlag)
				reject(*compareFlag, "ingest", payload2, err)
			}
			fmt.Printf("audit: %s passed all structural checks\n", *compareFlag)
		}
		return
	}

	client := gpurelay.NewClient("grtreplay-cli", sku)
	sess, err := client.NewReplaySession(rec)
	if err != nil {
		reject(*recFlag, "session", payload, err)
	}
	var scope *gpurelay.Scope
	if *metricsFlag != "" || *traceFlag != "" {
		// The scope aggregates into the service's fleet registry, so
		// -metrics dumps one complete registry: replay counters alongside
		// the ingest outcomes above.
		scope = gpurelay.NewScopeWith(fmt.Sprintf("replay/%s", rec.Workload),
			gpurelay.ScopeOptions{Fleet: svc.FleetRegistry()})
		sess.Instrument(scope)
	}

	var sess2 *gpurelay.ReplaySession
	if *compareFlag != "" {
		payload2, mac2, key2, err := readSingle(*compareFlag)
		if err != nil {
			log.Fatal(err)
		}
		rec2, err := svc.IngestRecording(payload2, mac2, key2)
		if err != nil {
			writeRejectBundle(svc, *bundleOutFlag)
			reject(*compareFlag, "ingest", payload2, err)
		}
		if !bytes.Equal(payload, payload2) {
			reject(*compareFlag, "compare", payload2, fmt.Errorf(
				"recordings differ: %s has %d payload bytes, %s has %d: %w",
				*recFlag, len(payload), *compareFlag, len(payload2), gpurelay.ErrBadRecording))
		}
		fmt.Printf("compare: %s is byte-identical to %s (%d bytes)\n", *compareFlag, *recFlag, len(payload))
		client2 := gpurelay.NewClient("grtreplay-cli-compare", sku)
		sess2, err = client2.NewReplaySession(rec2)
		if err != nil {
			reject(*compareFlag, "session", payload2, err)
		}
	}

	// Synthetic parameters and input (a real app provisions its trained
	// model inside the TEE). Both sessions, when comparing, get identical
	// weights.
	state := uint64(7)
	next := func() float32 {
		state ^= state << 13
		state ^= state >> 7
		state ^= state << 17
		return (float32(state%2048)/1024 - 1) / 8
	}
	for _, r := range sess.WeightRegions() {
		w := make([]float32, r.Elems)
		for i := range w {
			w[i] = next()
		}
		if err := sess.SetWeights(r.Name, w); err != nil {
			log.Fatal(err)
		}
		if sess2 != nil {
			if err := sess2.SetWeights(r.Name, w); err != nil {
				log.Fatal(err)
			}
		}
	}

	for run := 0; run < *nFlag; run++ {
		input := make([]float32, inputElems(rec.Workload))
		for i := range input {
			input[i] = float32((i*(run+3) + run) % 256)
		}
		if err := sess.SetInput(input); err != nil {
			log.Fatal(err)
		}
		res, err := sess.Run()
		if err != nil {
			if errors.Is(err, gpurelay.ErrBadRecording) {
				reject(*recFlag, "replay", payload, err)
			}
			log.Fatalf("replay %d: %v", run, err)
		}
		out, err := sess.Output()
		if err != nil {
			log.Fatal(err)
		}
		best, bestP := 0, float32(0)
		for i, p := range out {
			if p > bestP {
				best, bestP = i, p
			}
		}
		fmt.Printf("replay %d: %.2f ms, %d events, class %d (p=%.3f)\n",
			run, float64(res.Delay.Microseconds())/1000, res.Events, best, bestP)
		if sess2 != nil {
			if err := sess2.SetInput(input); err != nil {
				log.Fatal(err)
			}
			if _, err := sess2.Run(); err != nil {
				log.Fatalf("compare replay %d: %v", run, err)
			}
			out2, err := sess2.Output()
			if err != nil {
				log.Fatal(err)
			}
			if len(out) != len(out2) {
				log.Fatalf("compare replay %d: %d outputs vs %d", run, len(out), len(out2))
			}
			for i := range out {
				if out[i] != out2[i] {
					log.Fatalf("compare replay %d: output %d differs: %v vs %v", run, i, out[i], out2[i])
				}
			}
			fmt.Printf("compare replay %d: outputs identical\n", run)
		}
	}
	if *metricsFlag != "" {
		if err := writeOutput(*metricsFlag, svc.WriteMetrics); err != nil {
			log.Fatalf("writing metrics to %s: %v", *metricsFlag, err)
		}
		if *metricsFlag != "-" {
			fmt.Printf("wrote complete metrics registry to %s\n", *metricsFlag)
		}
	}
	if *traceFlag != "" {
		if err := writeOutput(*traceFlag, scope.WriteChromeTrace); err != nil {
			log.Fatalf("writing trace to %s: %v", *traceFlag, err)
		}
		if *traceFlag != "-" {
			fmt.Printf("wrote replay timeline to %s (%d spans)\n", *traceFlag, len(scope.Spans()))
		}
	}
}

// writeRejectBundle exports the service's latest sealed diagnostic bundle
// (captured by the ingestion rejection) to path, when -bundle-out was given.
func writeRejectBundle(svc *gpurelay.Service, path string) {
	if path == "" {
		return
	}
	sb, ok := svc.LastDiagBundle()
	if !ok {
		fmt.Fprintln(os.Stderr, "grtreplay: no diagnostic bundle was captured")
		return
	}
	err := writeOutput(path, func(w io.Writer) error {
		return gpurelay.EncodeDiagBundle(w, sb, svc.BundleKey())
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "grtreplay: writing diagnostic bundle to %s: %v\n", path, err)
		return
	}
	fmt.Fprintf(os.Stderr, "grtreplay: wrote diagnostic bundle to %s\n", path)
}

// writeOutput writes via fn to path, or to stdout when path is "-".
func writeOutput(path string, fn func(io.Writer) error) error {
	if path == "-" {
		return fn(os.Stdout)
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := fn(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func inputElems(workload string) int {
	switch workload {
	case "MNIST":
		return 28 * 28
	case "AlexNet":
		return 3 * 227 * 227
	case "MobileNet", "SqueezeNet":
		return 3 * 224 * 224
	case "ResNet12", "VGG16":
		return 3 * 128 * 128
	}
	return 28 * 28
}
