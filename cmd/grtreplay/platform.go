package main

import (
	"fmt"
	"log"

	"gpurelay"
	"gpurelay/internal/gpumem"
	"gpurelay/internal/mali"
	"gpurelay/internal/platform"
	"gpurelay/internal/replay"
	"gpurelay/internal/tee"
	"gpurelay/internal/timesim"
	"gpurelay/internal/trace"
)

// runPlatformReplay replays every per-GPU recording of a platform bundle,
// each on its own simulated GPU, hosted as processes of one discrete-event
// engine. Each recording is verified under its bundled key before a single
// event replays; the parallel engine replays same-timestamp work on all host
// cores with results identical to the serial engine.
func runPlatformReplay(entries []platform.Entry, sku *gpurelay.SKU, engine string, runs int) {
	var eng timesim.Engine
	if engine == "parallel" {
		eng = timesim.NewParallelEngine()
	} else {
		eng = timesim.NewSerialEngine()
	}

	type gpuReplay struct {
		delay  float64 // ms, summed over runs
		events int
	}
	results := make([]gpuReplay, len(entries))
	for i := range entries {
		i := i
		e := entries[i]
		signed := &trace.Signed{Payload: e.Payload}
		if len(e.MAC) != len(signed.MAC) {
			log.Fatalf("gpu %d: recording MAC is %d bytes, want %d", i, len(e.MAC), len(signed.MAC))
		}
		copy(signed.MAC[:], e.MAC)
		eng.Go(uint64(i), func(tm timesim.Time) error {
			rec, err := trace.Verify(signed, e.Key)
			if err != nil {
				return fmt.Errorf("gpu %d: %w", i, err)
			}
			pool := gpumem.NewPool(rec.PoolSize)
			gpu := mali.New(sku, pool, tm, 99)
			ctrl := tee.NewController(gpu)
			rp, err := replay.New(signed, e.Key, gpu, ctrl, tm)
			if err != nil {
				return fmt.Errorf("gpu %d: %w", i, err)
			}
			for run := 0; run < runs; run++ {
				res, err := rp.Run()
				if err != nil {
					return fmt.Errorf("gpu %d replay %d: %w", i, run, err)
				}
				results[i].delay += float64(res.Delay.Microseconds()) / 1000
				results[i].events = res.Events
			}
			return nil
		})
	}
	if err := eng.Run(); err != nil {
		log.Fatalf("replay: %v", err)
	}
	for i, r := range results {
		fmt.Printf("gpu %2d: verified and replayed ×%d, %.2f ms total, %d events each\n",
			i, runs, r.delay, r.events)
	}
	fmt.Printf("engine: %d events on the %s engine\n", eng.Events(), engine)
}
