package main

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"testing"
	"time"

	"gpurelay/internal/gpumem"
)

// The -perf mode measures the real-time cost of the §5 memory-sync pipeline
// (capture, delta, range-code, decode) on the evaluation's smallest and
// largest footprints and writes the numbers as a machine-readable artifact.
// Unlike the virtual-time evaluation above, these are wall-clock numbers:
// they are the host-side CPU cost a relay pays per synchronized job
// boundary, and the perf trajectory CI tracks across PRs.

// perfEntry is one benchmark row of the perf artifact.
type perfEntry struct {
	Name        string  `json:"name"`
	Iterations  int     `json:"iterations"`
	NsPerOp     int64   `json:"ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	SyncMBPerOp float64 `json:"sync_mb_per_op"` // snapshot payload moved per op
	WallClockMS float64 `json:"wall_clock_ms"`  // total measured time
}

// perfArtifact is the BENCH_PR4.json schema.
type perfArtifact struct {
	Schema     string      `json:"schema"`
	GOOS       string      `json:"goos"`
	GOARCH     string      `json:"goarch"`
	GoMaxProcs int         `json:"gomaxprocs"`
	NumCPU     int         `json:"num_cpu"`
	Timestamp  string      `json:"timestamp"`
	Benchmarks []perfEntry `json:"benchmarks"`
}

func perfBench(name string, syncBytes int64, fn func(b *testing.B)) perfEntry {
	res := testing.Benchmark(fn)
	e := perfEntry{
		Name:        name,
		Iterations:  res.N,
		NsPerOp:     res.NsPerOp(),
		AllocsPerOp: res.AllocsPerOp(),
		BytesPerOp:  res.AllocedBytesPerOp(),
		SyncMBPerOp: float64(syncBytes) / (1 << 20),
		WallClockMS: float64(res.T.Nanoseconds()) / 1e6,
	}
	fmt.Printf("%-32s %12d ns/op %10d allocs/op %14d B/op %10.1f sync-MB/op\n",
		e.Name, e.NsPerOp, e.AllocsPerOp, e.BytesPerOp, e.SyncMBPerOp)
	return e
}

// runPerf executes the memory-sync micro-benchmarks and writes the artifact.
func runPerf(outPath string) error {
	fmt.Println("=== memory-sync pipeline micro-benchmarks (wall-clock) ===")
	art := perfArtifact{
		Schema: "grt-perf/1", GOOS: runtime.GOOS, GOARCH: runtime.GOARCH,
		GoMaxProcs: runtime.GOMAXPROCS(0), NumCPU: runtime.NumCPU(),
		Timestamp: time.Now().UTC().Format(time.RFC3339),
	}

	for _, spec := range gpumem.FootprintSpecs() {
		fp, err := gpumem.BuildFootprint(spec)
		if err != nil {
			return err
		}
		snap := gpumem.Capture(fp.Pool, fp.Regions, nil)
		raw := snap.RawBytes()

		art.Benchmarks = append(art.Benchmarks,
			perfBench("SnapshotEncode/"+spec.Name, raw, func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					if _, err := snap.Encode(nil, gpumem.EncodeOptions{Compress: true}); err != nil {
						b.Fatal(err)
					}
				}
			}))

		fp.DirtySome(1)
		cur := gpumem.Capture(fp.Pool, fp.Regions, nil)
		art.Benchmarks = append(art.Benchmarks,
			perfBench("SnapshotEncodeDelta/"+spec.Name, raw, func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					if _, err := cur.Encode(snap, gpumem.EncodeOptions{Delta: true, Compress: true}); err != nil {
						b.Fatal(err)
					}
				}
			}))

		wire, err := cur.Encode(nil, gpumem.EncodeOptions{Compress: true})
		if err != nil {
			return err
		}
		art.Benchmarks = append(art.Benchmarks,
			perfBench("SnapshotDecode/"+spec.Name, raw, func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					dec, err := gpumem.Decode(wire, nil)
					if err != nil {
						b.Fatal(err)
					}
					dec.Release()
				}
			}))

		art.Benchmarks = append(art.Benchmarks,
			perfBench("CaptureDirty/"+spec.Name, raw, func(b *testing.B) {
				var cs gpumem.CaptureState
				cs.Commit(cs.Capture(fp.Pool, fp.Regions, nil))
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					fp.DirtySome(uint64(i))
					s := cs.Capture(fp.Pool, fp.Regions, nil)
					if _, err := s.Encode(cs.Prev(), gpumem.EncodeOptions{Delta: true, Compress: true}); err != nil {
						b.Fatal(err)
					}
					cs.Commit(s)
				}
			}))
	}

	blob, err := json.MarshalIndent(art, "", "  ")
	if err != nil {
		return err
	}
	blob = append(blob, '\n')
	if err := os.WriteFile(outPath, blob, 0o644); err != nil {
		return err
	}
	fmt.Printf("\nperf artifact written to %s\n", outPath)
	return nil
}
