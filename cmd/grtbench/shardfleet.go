package main

import (
	"bytes"
	"context"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"time"

	"gpurelay/internal/mali"
	"gpurelay/internal/mlfw"
	"gpurelay/internal/platform"
	"gpurelay/internal/record"
)

// The sharded -fleet mode measures the cache-first admission path at fleet
// scale: -clients admissions over -workloads distinct workloads, routed by
// consistent hashing on the cache key across -shards session-manager
// partitions. The interesting numbers are record-amplification (records per
// unique workload — the ROADMAP's → 1.0 target), the cache hit rate, the
// p99 leader admission wait on the virtual clock, and the shed rate. The
// drill runs twice and the artifact records whether every metric and every
// per-workload recording seal matched byte for byte — the determinism claim
// CI gates on, next to the amplification ceiling.

// shardRunRow is one drill run's measurement in the artifact.
type shardRunRow struct {
	WallMS    float64 `json:"wall_ms"`
	VirtualMS float64 `json:"virtual_ms"`
	Events    int64   `json:"events"`
}

// shardArtifact is the BENCH_PR8.json schema (grt-shardfleet/1).
type shardArtifact struct {
	Schema     string `json:"schema"`
	GOOS       string `json:"goos"`
	GOARCH     string `json:"goarch"`
	GoMaxProcs int    `json:"gomaxprocs"`
	NumCPU     int    `json:"num_cpu"`
	Timestamp  string `json:"timestamp"`

	Clients   int `json:"clients"`
	Workloads int `json:"workloads"`
	Shards    int `json:"shards"`

	Hits      int64 `json:"hits"`
	Misses    int64 `json:"misses"`
	Coalesced int64 `json:"coalesced"`
	Shed      int64 `json:"shed"`
	Records   int64 `json:"records"`

	RecordAmplification float64 `json:"record_amplification"`
	CacheHitRate        float64 `json:"cache_hit_rate"`
	ShedRate            float64 `json:"shed_rate"`
	P99AdmissionWaitMS  float64 `json:"p99_admission_wait_ms"`
	MaxShardQueue       int     `json:"max_shard_queue"`

	Runs []shardRunRow `json:"runs"`
	// Deterministic records that the second run reproduced every metric and
	// every per-workload recording seal byte for byte.
	Deterministic bool `json:"deterministic"`
	// SealDigest is the hex SHA-256-free concatenated witness of the
	// per-workload seals (first 8 bytes of each), for eyeballing drift
	// across artifact generations.
	SealDigest string `json:"seal_digest"`

	// AmpGate echoes the -amp-gate ceiling (0 = not gated) and whether the
	// measured amplification passed it.
	AmpGate     float64 `json:"amp_gate,omitempty"`
	AmpGatePass bool    `json:"amp_gate_pass"`
}

// runShardFleet runs the sharded cache-first fleet drill twice, writes
// BENCH_PR8.json, and enforces the amplification gate.
func runShardFleet(clients, workloads, shards int, outPath, healthOut string, ampGate float64) error {
	opts := platform.ShardedFleetOptions{
		Clients:   clients,
		Workloads: workloads,
		Shards:    shards,
		Model:     mlfw.Micro(),
		SKU:       mali.G71MP8,
		Variant:   record.OursMDS,
		Seed:      42,
	}
	fmt.Printf("=== sharded fleet drill: %d clients x %d workloads over %d shards (cache-first admission) ===\n",
		clients, workloads, shards)

	run := func() (*platform.ShardedFleetResult, error) {
		return platform.ShardedFleetDrill(context.Background(), opts)
	}
	a, err := run()
	if err != nil {
		return fmt.Errorf("sharded drill: %w", err)
	}
	fmt.Printf("run 1: %d records  %d hits  %d coalesced  %d shed  amplification %.3f  hit rate %.3f  p99 wait %s  (%.1f ms wall)\n",
		a.Records, a.Hits, a.Coalesced, a.Shed, a.RecordAmplification, a.CacheHitRate,
		a.P99AdmissionWait, float64(a.Wall.Nanoseconds())/1e6)
	b, err := run()
	if err != nil {
		return fmt.Errorf("sharded drill (repeat): %w", err)
	}

	deterministic := a.Hits == b.Hits && a.Misses == b.Misses &&
		a.Coalesced == b.Coalesced && a.Shed == b.Shed && a.Records == b.Records &&
		a.CacheHitRate == b.CacheHitRate &&
		a.RecordAmplification == b.RecordAmplification &&
		a.P99AdmissionWait == b.P99AdmissionWait &&
		a.VirtualTime == b.VirtualTime && a.Events == b.Events
	for w := range a.WorkloadSeals {
		if a.WorkloadSeals[w] != b.WorkloadSeals[w] {
			deterministic = false
			break
		}
	}
	if !deterministic {
		return fmt.Errorf("sharded drill: repeat run diverged — metrics or seals are not deterministic")
	}
	fmt.Printf("run 2: metrics and all %d workload seals byte-identical\n", len(a.WorkloadSeals))

	witness := make([]byte, 0, 8*len(a.WorkloadSeals))
	for _, s := range a.WorkloadSeals {
		witness = append(witness, s[:8]...)
	}
	art := shardArtifact{
		Schema: "grt-shardfleet/1", GOOS: runtime.GOOS, GOARCH: runtime.GOARCH,
		GoMaxProcs: runtime.GOMAXPROCS(0), NumCPU: runtime.NumCPU(),
		Timestamp: time.Now().UTC().Format(time.RFC3339),
		Clients:   a.Clients, Workloads: a.Workloads, Shards: a.Shards,
		Hits: a.Hits, Misses: a.Misses, Coalesced: a.Coalesced,
		Shed: a.Shed, Records: a.Records,
		RecordAmplification: a.RecordAmplification,
		CacheHitRate:        a.CacheHitRate,
		ShedRate:            float64(a.Shed) / float64(a.Clients),
		P99AdmissionWaitMS:  float64(a.P99AdmissionWait.Nanoseconds()) / 1e6,
		MaxShardQueue:       a.MaxShardQueue,
		Runs: []shardRunRow{
			{WallMS: float64(a.Wall.Nanoseconds()) / 1e6, VirtualMS: float64(a.VirtualTime.Nanoseconds()) / 1e6, Events: a.Events},
			{WallMS: float64(b.Wall.Nanoseconds()) / 1e6, VirtualMS: float64(b.VirtualTime.Nanoseconds()) / 1e6, Events: b.Events},
		},
		Deterministic: true,
		SealDigest:    hex.EncodeToString(witness[:minInt(len(witness), 32)]),
		AmpGate:       ampGate,
		AmpGatePass:   ampGate <= 0 || a.RecordAmplification <= ampGate,
	}

	if healthOut != "" {
		f, err := os.Create(healthOut)
		if err != nil {
			return err
		}
		if err := a.Health.WriteJSON(f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Printf("wrote fleet health report to %s (state: %s, cache hit rate %.3f)\n",
			healthOut, a.Health.State, a.Health.Window.CacheHitRate)
	}

	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	enc.SetIndent("", "  ")
	if err := enc.Encode(art); err != nil {
		return err
	}
	if err := os.WriteFile(outPath, buf.Bytes(), 0o644); err != nil {
		return err
	}
	fmt.Printf("wrote sharded fleet artifact to %s\n", outPath)

	if !art.AmpGatePass {
		return fmt.Errorf("record-amplification gate failed: %.3f > %.3f", a.RecordAmplification, ampGate)
	}
	if ampGate > 0 {
		fmt.Printf("record-amplification gate passed: %.3f <= %.3f\n", a.RecordAmplification, ampGate)
	}
	return nil
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}
