// grtbench regenerates every table and figure of the paper's evaluation
// (§7): Figure 7(a)/(b), Table 1, Table 2, Figure 8, Figure 9, and the §7.3
// validation experiments. Everything runs on the virtual clock, so the full
// matrix (six networks x four recorders x two network conditions, plus
// replays and native baselines) completes in a few minutes of real time.
//
// Usage:
//
//	grtbench            # the full paper evaluation
//	grtbench -fast      # MNIST + AlexNet only
//	grtbench -perf      # memory-sync micro-benchmarks -> BENCH_PR4.json
//	grtbench -fleet -engine parallel -gpus 16
//	                    # fleet drill, serial vs parallel engine -> BENCH_PR6.json
//	grtbench -fleet -clients 10000 -workloads 100 -shards 4
//	                    # sharded cache-first fleet drill -> BENCH_PR8.json
//	grtbench -perf -ckpt-mode incremental -ckpt-gate 0.5
//	                    # checkpoint capture, full vs incremental, plus the
//	                    # fleet speculation warm start -> BENCH_PR9.json
//	grtbench -fleet -health-plan dying-gpu -gpus 100
//	                    # degraded-fleet drill: device faults, cross-VM
//	                    # migration, byte-identity gate -> BENCH_PR10.json
//
// Inconsistent flag combinations (e.g. -clients without -fleet, or an
// explicit -shards 0) are rejected with exit code 2 and a single-line JSON
// report on stderr ({"rejected":true,"stage":"flags","reason":...}), so
// pipelines can triage misconfiguration without parsing error prose.
package main

import (
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"log"
	"os"

	"gpurelay/internal/experiments"
	"gpurelay/internal/faultsim"
	"gpurelay/internal/mlfw"
	"gpurelay/internal/netsim"
)

// flagRejection is the machine-readable report grtbench emits when the flag
// surface is combined inconsistently. Mirrors grtreplay's rejection schema.
type flagRejection struct {
	Rejected bool   `json:"rejected"`
	Stage    string `json:"stage"`  // always "flags"
	Reason   string `json:"reason"` // stable token: needs_fleet|bad_shards|...
	Error    string `json:"error"`
}

// rejectFlags prints one JSON line to stderr and exits 2: the invocation,
// not the environment, is at fault.
func rejectFlags(reason, msg string) {
	line, err := json.Marshal(flagRejection{Rejected: true, Stage: "flags", Reason: reason, Error: msg})
	if err != nil {
		fmt.Fprintf(os.Stderr, `{"rejected":true,"stage":"flags","reason":%q}`+"\n", reason)
		os.Exit(2)
	}
	fmt.Fprintln(os.Stderr, string(line))
	os.Exit(2)
}

// rejectPlan reports an unparsable -health-plan the same way grtrecord's
// -faults path does: one JSON line carrying the parser's stable reason
// token, exit 2.
func rejectPlan(err error) {
	reason := "bad_plan"
	var pe *faultsim.PlanError
	if errors.As(err, &pe) {
		reason = pe.Reason
	}
	line, merr := json.Marshal(flagRejection{Rejected: true, Stage: "fault-plan", Reason: reason, Error: err.Error()})
	if merr != nil {
		fmt.Fprintf(os.Stderr, `{"rejected":true,"stage":"fault-plan","reason":%q}`+"\n", reason)
		os.Exit(2)
	}
	fmt.Fprintln(os.Stderr, string(line))
	os.Exit(2)
}

func main() {
	fast := flag.Bool("fast", false, "run only MNIST and AlexNet")
	perf := flag.Bool("perf", false, "run memory-sync micro-benchmarks and write a perf artifact")
	perfOut := flag.String("perfout", "BENCH_PR4.json", "perf artifact output path (with -perf)")
	fleet := flag.Bool("fleet", false, "run the multi-session fleet drill on the discrete-event engine and write a scheduling artifact")
	fleetOut := flag.String("fleetout", "BENCH_PR6.json", "fleet artifact output path (with -fleet)")
	traceOut := flag.String("trace-out", "", "with -fleet: write the instrumented drill's combined Chrome trace (per-session spans + engine handler spans) to this file")
	healthOut := flag.String("health-out", "", "with -fleet: write the instrumented drill's fleet health report (grt-health/1 JSON, for grtdiag health) to this file")
	engineFlag := flag.String("engine", "serial", "discrete-event engine for the fleet drill: serial|parallel (parallel also runs the serial baseline and reports the speedup)")
	gpus := flag.Int("gpus", 1, "fleet drill sessions, one GPU each (with -fleet; 1 selects the default 16-session drill)")
	clients := flag.Int("clients", 0, "with -fleet: simulated client admissions for the sharded cache-first drill (selects the sharded drill; 0 with -shards/-workloads -> 10000)")
	workloads := flag.Int("workloads", 0, "with -fleet: distinct workloads across the sharded drill's clients (0 -> 100)")
	shards := flag.Int("shards", 0, "with -fleet: session-manager partitions under consistent hashing on the cache key (0 -> 4; an explicit 0 is rejected)")
	shardOut := flag.String("shardout", "BENCH_PR8.json", "sharded fleet artifact output path (with -fleet -clients/-workloads/-shards)")
	ampGate := flag.Float64("amp-gate", 0, "with the sharded drill: fail (exit 1) when record-amplification exceeds this ceiling (0 = no gate)")
	ckptMode := flag.String("ckpt-mode", "", "with -perf: also benchmark checkpoint capture (full|incremental; incremental measures both modes plus the fleet speculation warm start) and write the checkpoint artifact")
	ckptOut := flag.String("ckptout", "BENCH_PR9.json", "checkpoint artifact output path (with -perf -ckpt-mode)")
	ckptGate := flag.Float64("ckpt-gate", 0, "with -perf -ckpt-mode incremental: fail (exit 1) when the incremental/full capture-time ratio reaches this ceiling on any footprint (0 = no gate)")
	healthPlan := flag.String("health-plan", "", "with -fleet: run the degraded-fleet drill under this device-health fault plan (preset name or spec, e.g. dying-gpu); -gpus sets the fleet size (<=1 -> 100)")
	degradedOut := flag.String("degradedout", "BENCH_PR10.json", "degraded-fleet artifact output path (with -fleet -health-plan)")
	flag.Parse()

	set := map[string]bool{}
	flag.Visit(func(f *flag.Flag) { set[f.Name] = true })
	shardDrill := set["clients"] || set["workloads"] || set["shards"]

	if set["ckpt-mode"] || set["ckptout"] || set["ckpt-gate"] {
		// The checkpoint benchmark's flag surface is validated before
		// anything runs, same machine-readable convention as the sharded
		// drill's (satellite: `-ckpt-mode` flag surface).
		if !set["ckpt-mode"] {
			rejectFlags("needs_ckpt_mode", "-ckptout/-ckpt-gate configure the checkpoint benchmark and need -ckpt-mode")
		}
		if *ckptMode != "full" && *ckptMode != "incremental" {
			rejectFlags("bad_ckpt_mode", fmt.Sprintf("unknown checkpoint mode %q (full|incremental)", *ckptMode))
		}
		if !*perf {
			rejectFlags("needs_perf", "-ckpt-mode benchmarks checkpoint capture and needs -perf")
		}
		if set["ckpt-gate"] && *ckptGate < 0 {
			rejectFlags("bad_ckpt_gate", fmt.Sprintf("-ckpt-gate %v: the capture-ratio ceiling cannot be negative", *ckptGate))
		}
		if set["ckpt-gate"] && *ckptGate > 0 && *ckptMode != "incremental" {
			rejectFlags("gate_needs_incremental", "-ckpt-gate compares incremental to full capture and needs -ckpt-mode incremental")
		}
	}

	if *engineFlag != "serial" && *engineFlag != "parallel" {
		log.Fatalf("unknown engine %q (serial|parallel)", *engineFlag)
	}
	if shardDrill {
		// The sharded drill's flag surface is validated before anything
		// runs; inconsistent combinations are a misconfiguration, reported
		// machine-readably (satellite: `grtbench -fleet` flag surface).
		if !*fleet {
			rejectFlags("needs_fleet", "-clients/-workloads/-shards select the sharded fleet drill and need -fleet")
		}
		if set["shards"] && *shards <= 0 {
			rejectFlags("bad_shards", fmt.Sprintf("-shards %d: the drill needs at least one admission partition", *shards))
		}
		if set["clients"] && *clients <= 0 {
			rejectFlags("bad_clients", fmt.Sprintf("-clients %d: the drill needs at least one admission", *clients))
		}
		if set["workloads"] && *workloads <= 0 {
			rejectFlags("bad_workloads", fmt.Sprintf("-workloads %d: the drill needs at least one workload", *workloads))
		}
		if *clients == 0 {
			*clients = 10000
		}
		if *workloads == 0 {
			*workloads = 100
		}
		if *shards == 0 {
			*shards = 4
		}
		if *workloads > *clients {
			rejectFlags("workloads_exceed_clients",
				fmt.Sprintf("-workloads %d > -clients %d: every workload needs at least one admission", *workloads, *clients))
		}
		if set["engine"] && *engineFlag == "parallel" {
			rejectFlags("engine_conflict", "the sharded drill is event-native on its own serial engine; -engine parallel belongs to the -gpus drill")
		}
		if set["gpus"] {
			rejectFlags("gpus_conflict", "-gpus selects the per-GPU fleet drill; it cannot combine with -clients/-workloads/-shards")
		}
		if *traceOut != "" {
			rejectFlags("trace_conflict", "the sharded drill exports no engine trace; -trace-out belongs to the -gpus drill")
		}
	}
	var plan *faultsim.Plan
	if set["health-plan"] || set["degradedout"] {
		// The degraded drill's flag surface, same convention: misuse is
		// reported machine-readably before anything runs.
		if !set["health-plan"] {
			rejectFlags("needs_health_plan", "-degradedout configures the degraded-fleet drill and needs -health-plan")
		}
		if !*fleet {
			rejectFlags("needs_fleet", "-health-plan selects the degraded-fleet drill and needs -fleet")
		}
		if shardDrill {
			rejectFlags("shard_conflict", "the degraded drill admits one session per GPU; -clients/-workloads/-shards belong to the sharded drill")
		}
		if set["engine"] && *engineFlag == "parallel" {
			rejectFlags("engine_conflict", "the degraded drill replays device faults on its own serial engine; -engine parallel belongs to the plain -gpus drill")
		}
		if *traceOut != "" {
			rejectFlags("trace_conflict", "the degraded drill exports no engine trace; -trace-out belongs to the plain -gpus drill")
		}
		var err error
		if plan, err = faultsim.ParsePlan(*healthPlan); err != nil {
			rejectPlan(err)
		}
		health := false
		for _, f := range plan.Faults {
			if f.Kind.Health() {
				health = true
				break
			}
		}
		if !health {
			rejectFlags("no_health_faults",
				fmt.Sprintf("plan %q schedules no device-health fault (thermal/sbe/dbe/falloff); it cannot degrade a GPU", *healthPlan))
		}
	}
	if *perf {
		if err := runPerf(*perfOut); err != nil {
			log.Fatal(err)
		}
		if *ckptMode != "" {
			if err := runCkptBench(*ckptMode, *ckptOut, *ckptGate); err != nil {
				log.Fatal(err)
			}
		}
		return
	}
	if *fleet {
		if plan != nil {
			if err := runDegradedFleet(plan, *healthPlan, *gpus, *degradedOut, *healthOut); err != nil {
				log.Fatal(err)
			}
			return
		}
		if shardDrill {
			if err := runShardFleet(*clients, *workloads, *shards, *shardOut, *healthOut, *ampGate); err != nil {
				log.Fatal(err)
			}
			return
		}
		if err := runFleet(*engineFlag, *gpus, *fleetOut, *traceOut, *healthOut); err != nil {
			log.Fatal(err)
		}
		return
	}
	if *traceOut != "" || *healthOut != "" {
		log.Fatal("-trace-out and -health-out need -fleet")
	}

	var suite *experiments.Suite
	if *fast {
		suite = experiments.NewSuite(mlfw.MNIST(), mlfw.AlexNet())
	} else {
		suite = experiments.NewSuite()
	}

	fmt.Println("=== GR-T evaluation reproduction (all delays are virtual time) ===")

	f7w, err := suite.Figure7(netsim.WiFi)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println()
	fmt.Print(experiments.RenderFigure7("Figure 7(a): recording delays, WiFi (RTT 20ms, BW 80Mbps)", f7w))

	f7c, err := suite.Figure7(netsim.Cellular)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println()
	fmt.Print(experiments.RenderFigure7("Figure 7(b): recording delays, cellular (RTT 50ms, BW 40Mbps)", f7c))

	t1, err := suite.Table1()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println()
	fmt.Print(experiments.RenderTable1(t1))

	t2, err := suite.Table2()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println()
	fmt.Print(experiments.RenderTable2(t2))

	f8, err := suite.Figure8()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println()
	fmt.Print(experiments.RenderFigure8(f8))

	f9, err := suite.Figure9()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println()
	fmt.Print(experiments.RenderFigure9(f9))

	def, err := suite.DeferralEfficacy(netsim.WiFi)
	if err != nil {
		log.Fatal(err)
	}
	spec, err := suite.SpeculationEfficacy(netsim.WiFi)
	if err != nil {
		log.Fatal(err)
	}
	misModels := []string{"MNIST"}
	if !*fast {
		misModels = []string{"MNIST", "VGG16"}
	}
	mis, err := suite.MispredictionCost(misModels...)
	if err != nil {
		log.Fatal(err)
	}
	poll, err := suite.PollingOffload()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println()
	fmt.Println("=== §7.3 validation of key designs ===")
	fmt.Print(experiments.RenderValidation(def, spec, mis, poll))

	abl, err := suite.HistoryAblation()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println()
	fmt.Println("Ablation: cross-workload speculation history (warm vs cold)")
	fmt.Printf("%-12s %10s %10s %10s\n", "NN", "warm", "cold", "penalty")
	for _, r := range abl {
		fmt.Printf("%-12s %9.1fs %9.1fs %+9.1f%%\n", r.Model,
			r.FullDelay.Seconds(), r.NoHistoryDelay.Seconds(), r.ColdHistoryCost)
	}

	ks, err := suite.KSweep("MNIST")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println()
	fmt.Print(experiments.RenderKSweep("MNIST", ks))

	rtt, err := suite.RTTSweep("MNIST")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println()
	fmt.Print(experiments.RenderRTTSweep("MNIST", rtt))

	seg, err := suite.SegmentationTradeoff()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println()
	fmt.Print(experiments.RenderSegmentation(seg))
}
