// grtbench regenerates every table and figure of the paper's evaluation
// (§7): Figure 7(a)/(b), Table 1, Table 2, Figure 8, Figure 9, and the §7.3
// validation experiments. Everything runs on the virtual clock, so the full
// matrix (six networks x four recorders x two network conditions, plus
// replays and native baselines) completes in a few minutes of real time.
//
// Usage:
//
//	grtbench            # the full paper evaluation
//	grtbench -fast      # MNIST + AlexNet only
//	grtbench -perf      # memory-sync micro-benchmarks -> BENCH_PR4.json
//	grtbench -fleet -engine parallel -gpus 16
//	                    # fleet drill, serial vs parallel engine -> BENCH_PR6.json
package main

import (
	"flag"
	"fmt"
	"log"

	"gpurelay/internal/experiments"
	"gpurelay/internal/mlfw"
	"gpurelay/internal/netsim"
)

func main() {
	fast := flag.Bool("fast", false, "run only MNIST and AlexNet")
	perf := flag.Bool("perf", false, "run memory-sync micro-benchmarks and write a perf artifact")
	perfOut := flag.String("perfout", "BENCH_PR4.json", "perf artifact output path (with -perf)")
	fleet := flag.Bool("fleet", false, "run the multi-session fleet drill on the discrete-event engine and write a scheduling artifact")
	fleetOut := flag.String("fleetout", "BENCH_PR6.json", "fleet artifact output path (with -fleet)")
	traceOut := flag.String("trace-out", "", "with -fleet: write the instrumented drill's combined Chrome trace (per-session spans + engine handler spans) to this file")
	healthOut := flag.String("health-out", "", "with -fleet: write the instrumented drill's fleet health report (grt-health/1 JSON, for grtdiag health) to this file")
	engineFlag := flag.String("engine", "serial", "discrete-event engine for the fleet drill: serial|parallel (parallel also runs the serial baseline and reports the speedup)")
	gpus := flag.Int("gpus", 1, "fleet drill sessions, one GPU each (with -fleet; 1 selects the default 16-session drill)")
	flag.Parse()

	if *engineFlag != "serial" && *engineFlag != "parallel" {
		log.Fatalf("unknown engine %q (serial|parallel)", *engineFlag)
	}
	if *perf {
		if err := runPerf(*perfOut); err != nil {
			log.Fatal(err)
		}
		return
	}
	if *fleet {
		if err := runFleet(*engineFlag, *gpus, *fleetOut, *traceOut, *healthOut); err != nil {
			log.Fatal(err)
		}
		return
	}
	if *traceOut != "" || *healthOut != "" {
		log.Fatal("-trace-out and -health-out need -fleet")
	}

	var suite *experiments.Suite
	if *fast {
		suite = experiments.NewSuite(mlfw.MNIST(), mlfw.AlexNet())
	} else {
		suite = experiments.NewSuite()
	}

	fmt.Println("=== GR-T evaluation reproduction (all delays are virtual time) ===")

	f7w, err := suite.Figure7(netsim.WiFi)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println()
	fmt.Print(experiments.RenderFigure7("Figure 7(a): recording delays, WiFi (RTT 20ms, BW 80Mbps)", f7w))

	f7c, err := suite.Figure7(netsim.Cellular)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println()
	fmt.Print(experiments.RenderFigure7("Figure 7(b): recording delays, cellular (RTT 50ms, BW 40Mbps)", f7c))

	t1, err := suite.Table1()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println()
	fmt.Print(experiments.RenderTable1(t1))

	t2, err := suite.Table2()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println()
	fmt.Print(experiments.RenderTable2(t2))

	f8, err := suite.Figure8()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println()
	fmt.Print(experiments.RenderFigure8(f8))

	f9, err := suite.Figure9()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println()
	fmt.Print(experiments.RenderFigure9(f9))

	def, err := suite.DeferralEfficacy(netsim.WiFi)
	if err != nil {
		log.Fatal(err)
	}
	spec, err := suite.SpeculationEfficacy(netsim.WiFi)
	if err != nil {
		log.Fatal(err)
	}
	misModels := []string{"MNIST"}
	if !*fast {
		misModels = []string{"MNIST", "VGG16"}
	}
	mis, err := suite.MispredictionCost(misModels...)
	if err != nil {
		log.Fatal(err)
	}
	poll, err := suite.PollingOffload()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println()
	fmt.Println("=== §7.3 validation of key designs ===")
	fmt.Print(experiments.RenderValidation(def, spec, mis, poll))

	abl, err := suite.HistoryAblation()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println()
	fmt.Println("Ablation: cross-workload speculation history (warm vs cold)")
	fmt.Printf("%-12s %10s %10s %10s\n", "NN", "warm", "cold", "penalty")
	for _, r := range abl {
		fmt.Printf("%-12s %9.1fs %9.1fs %+9.1f%%\n", r.Model,
			r.FullDelay.Seconds(), r.NoHistoryDelay.Seconds(), r.ColdHistoryCost)
	}

	ks, err := suite.KSweep("MNIST")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println()
	fmt.Print(experiments.RenderKSweep("MNIST", ks))

	rtt, err := suite.RTTSweep("MNIST")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println()
	fmt.Print(experiments.RenderRTTSweep("MNIST", rtt))

	seg, err := suite.SegmentationTradeoff()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println()
	fmt.Print(experiments.RenderSegmentation(seg))
}
