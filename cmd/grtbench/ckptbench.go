package main

// The -perf -ckpt-mode path benchmarks checkpoint capture (PR9): full
// whole-session captures vs. the epoch-chained incremental capturer, on the
// evaluation's smallest and largest footprints, plus the fleet-shared
// speculation warm start (a cold service's first session seeded from a
// peer's validated-commit export). The numbers land in BENCH_PR9.json and
// CI gates two of them: incremental capture must cost well under full
// capture (-ckpt-gate), and the warm-started cold session's speculation
// hit rate must strictly beat the unseeded cold baseline.

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"testing"
	"time"

	"gpurelay"
	"gpurelay/internal/gpumem"
	"gpurelay/internal/record"
)

// ckptCaptureEntry is one footprint's capture-cost row. Per-boundary times
// are the session benchmark divided by the session's job count; sealed MB
// is the total sealed checkpoint payload one session produces.
type ckptCaptureEntry struct {
	Footprint     string  `json:"footprint"`
	Jobs          int     `json:"jobs"`
	EventsPerJob  int     `json:"events_per_job"`
	CaptureFullNs int64   `json:"capture_full_ns"` // per boundary
	CaptureIncrNs int64   `json:"capture_incr_ns"` // per boundary (incremental mode)
	Ratio         float64 `json:"ratio"`           // incr / full
	FullSealedMB  float64 `json:"full_sealed_mb"`  // per session
	IncrSealedMB  float64 `json:"incr_sealed_mb"`  // per session
	Epochs        int     `json:"epochs"`          // per incremental session
	Conflicts     int     `json:"conflicts"`       // per incremental session
}

// specWarmEntry reports the fleet warm-start experiment: the same workload
// recorded on a cold service and on a cold service seeded with a peer's
// validated-commit export. Hit rate is speculated commits over total
// commits for the session.
type specWarmEntry struct {
	Model       string  `json:"model"`
	SeededSigs  int     `json:"seeded_sigs"`
	ColdCommits int     `json:"cold_commits"`
	ColdAsync   int     `json:"cold_async_commits"`
	WarmCommits int     `json:"warm_commits"`
	WarmAsync   int     `json:"warm_async_commits"`
	ColdHitRate float64 `json:"spec_hit_cold"`
	WarmHitRate float64 `json:"spec_hit_warm"`
}

// ckptArtifact is the BENCH_PR9.json schema.
type ckptArtifact struct {
	Schema     string             `json:"schema"`
	GOOS       string             `json:"goos"`
	GOARCH     string             `json:"goarch"`
	GoMaxProcs int                `json:"gomaxprocs"`
	NumCPU     int                `json:"num_cpu"`
	Timestamp  string             `json:"timestamp"`
	Mode       string             `json:"ckpt_mode"`
	Gate       float64            `json:"ckpt_gate"`
	Captures   []ckptCaptureEntry `json:"captures"`
	SpecWarm   *specWarmEntry     `json:"spec_warm,omitempty"`
}

// benchCaptureSession benchmarks one synthetic session's checkpoint
// captures in the given mode and reports per-session time, sealed bytes
// per session, and (for incremental) sealed epochs and conflicts.
func benchCaptureSession(spec gpumem.FootprintSpec, mode record.CkptMode) (nsPerSession int64, sealedMB float64, captures, conflicts int, err error) {
	p, err := record.NewCkptPerf(spec, mode, 0, 0)
	if err != nil {
		return 0, 0, 0, 0, err
	}
	res := testing.Benchmark(func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			p.RunSession()
		}
	})
	// The harness accumulates across every iteration including the warmup
	// probes testing.Benchmark runs outside the measured N, so per-session
	// sealed output is read off one final session's delta, not an average.
	sealed0, captures0 := p.Sealed(), p.Captures()
	p.RunSession()
	return res.NsPerOp(), float64(p.Sealed()-sealed0) / (1 << 20),
		p.Captures() - captures0, p.Conflicts(), nil
}

// measureSpecWarm runs the fleet warm-start experiment: a donor service
// records the workload twice (enough for its history signatures to reach
// prediction confidence), exports its validated commits, and two fresh
// services then record the same workload cold — one unseeded, one seeded
// from the export. All delays are virtual; the hit rates are deterministic.
func measureSpecWarm() (*specWarmEntry, error) {
	model := gpurelay.MNIST()
	sku := gpurelay.MaliG71MP8

	donor := gpurelay.NewService()
	donorClient := gpurelay.NewClient("ckptbench-donor", sku)
	for i := 0; i < 2; i++ {
		if _, _, err := donorClient.Record(donor, model, gpurelay.RecordOptions{}); err != nil {
			return nil, fmt.Errorf("donor session %d: %w", i, err)
		}
	}
	snap := donor.ExportSpecHistory()

	cold := gpurelay.NewService()
	coldClient := gpurelay.NewClient("ckptbench-cold", sku)
	_, coldStats, err := coldClient.Record(cold, model, gpurelay.RecordOptions{})
	if err != nil {
		return nil, fmt.Errorf("cold session: %w", err)
	}

	warm := gpurelay.NewService()
	seeded := warm.ImportSpecHistory(snap)
	warmClient := gpurelay.NewClient("ckptbench-warm", sku)
	_, warmStats, err := warmClient.Record(warm, model, gpurelay.RecordOptions{})
	if err != nil {
		return nil, fmt.Errorf("warm session: %w", err)
	}

	e := &specWarmEntry{
		Model:       model.Name,
		SeededSigs:  seeded,
		ColdCommits: coldStats.Shim.Commits,
		ColdAsync:   coldStats.Shim.AsyncCommits,
		WarmCommits: warmStats.Shim.Commits,
		WarmAsync:   warmStats.Shim.AsyncCommits,
	}
	if e.ColdCommits > 0 {
		e.ColdHitRate = float64(e.ColdAsync) / float64(e.ColdCommits)
	}
	if e.WarmCommits > 0 {
		e.WarmHitRate = float64(e.WarmAsync) / float64(e.WarmCommits)
	}
	return e, nil
}

// runCkptBench measures checkpoint capture in the requested mode, writes
// BENCH_PR9.json, and enforces the gates: with mode "incremental", the
// incremental/full per-boundary ratio must stay under gate (when > 0) on
// every footprint, and the warm-started hit rate must strictly exceed the
// cold baseline. Gate violations are exit-1 failures — the build, not the
// invocation, is at fault.
func runCkptBench(mode, outPath string, gate float64) error {
	fmt.Printf("\n=== checkpoint capture benchmarks (wall-clock, mode %s) ===\n", mode)
	art := ckptArtifact{
		Schema: "grt-ckpt/1", GOOS: runtime.GOOS, GOARCH: runtime.GOARCH,
		GoMaxProcs: runtime.GOMAXPROCS(0), NumCPU: runtime.NumCPU(),
		Timestamp: time.Now().UTC().Format(time.RFC3339),
		Mode:      mode, Gate: gate,
	}
	incremental := mode == "incremental"

	var gateErr error
	for _, spec := range gpumem.FootprintSpecs() {
		e := ckptCaptureEntry{Footprint: spec.Name, Jobs: spec.Kernels, EventsPerJob: 96}
		fullNs, fullMB, _, _, err := benchCaptureSession(spec, record.CkptFull)
		if err != nil {
			return err
		}
		e.CaptureFullNs = fullNs / int64(spec.Kernels)
		e.FullSealedMB = fullMB
		if incremental {
			incrNs, incrMB, epochs, conflicts, err := benchCaptureSession(spec, record.CkptIncremental)
			if err != nil {
				return err
			}
			e.CaptureIncrNs = incrNs / int64(spec.Kernels)
			e.IncrSealedMB = incrMB
			e.Epochs = epochs
			e.Conflicts = conflicts
			if e.CaptureFullNs > 0 {
				e.Ratio = float64(e.CaptureIncrNs) / float64(e.CaptureFullNs)
			}
			fmt.Printf("%-24s full %10d ns/boundary (%6.2f MB/session)  incremental %10d ns/boundary (%6.2f MB/session)  ratio %.3f\n",
				spec.Name, e.CaptureFullNs, e.FullSealedMB, e.CaptureIncrNs, e.IncrSealedMB, e.Ratio)
			if gate > 0 && e.Ratio >= gate && gateErr == nil {
				gateErr = fmt.Errorf("checkpoint gate: %s incremental/full capture ratio %.3f >= ceiling %.3f",
					spec.Name, e.Ratio, gate)
			}
		} else {
			fmt.Printf("%-24s full %10d ns/boundary (%6.2f MB/session)\n",
				spec.Name, e.CaptureFullNs, e.FullSealedMB)
		}
		art.Captures = append(art.Captures, e)
	}

	if incremental {
		sw, err := measureSpecWarm()
		if err != nil {
			return err
		}
		art.SpecWarm = sw
		fmt.Printf("spec warm start (%s): cold hit rate %.3f (%d/%d), warm %.3f (%d/%d), %d sigs seeded\n",
			sw.Model, sw.ColdHitRate, sw.ColdAsync, sw.ColdCommits,
			sw.WarmHitRate, sw.WarmAsync, sw.WarmCommits, sw.SeededSigs)
		if gateErr == nil && sw.WarmHitRate <= sw.ColdHitRate {
			gateErr = fmt.Errorf("spec warm-start gate: warm hit rate %.3f does not beat cold %.3f",
				sw.WarmHitRate, sw.ColdHitRate)
		}
	}

	blob, err := json.MarshalIndent(art, "", "  ")
	if err != nil {
		return err
	}
	blob = append(blob, '\n')
	if err := os.WriteFile(outPath, blob, 0o644); err != nil {
		return err
	}
	fmt.Printf("checkpoint artifact written to %s\n", outPath)
	return gateErr
}
