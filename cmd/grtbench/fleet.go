package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"time"

	"gpurelay/internal/cloud"
	"gpurelay/internal/mali"
	"gpurelay/internal/mlfw"
	"gpurelay/internal/obs"
	"gpurelay/internal/platform"
	"gpurelay/internal/record"
	"gpurelay/internal/timesim"
)

// The -fleet mode measures the discrete-event engine itself: N identical
// record sessions admitted through the cloud session manager and run as
// engine processes. The serial engine is the baseline; the parallel engine
// executes same-timestamp events on all host cores and must produce
// byte-identical recordings while doing it. Wall time, events/sec, and the
// parallel-vs-serial speedup go into BENCH_PR6.json — the scheduling
// trajectory CI tracks, next to the PR4 memory-sync artifact.

// fleetRow is one engine's drill measurement in the fleet artifact.
type fleetRow struct {
	Engine       string  `json:"engine"`
	Sessions     int     `json:"sessions"`
	WallMS       float64 `json:"wall_ms"`
	VirtualMS    float64 `json:"virtual_ms"`
	Events       int64   `json:"events"`
	EventsPerSec float64 `json:"events_per_sec"`
	// Timestamps and MaxBatch describe how events grouped: MaxBatch is the
	// widest same-timestamp batch, i.e. the structural parallelism the
	// parallel engine can exploit given that many cores.
	Timestamps int64 `json:"timestamps"`
	MaxBatch   int   `json:"max_batch"`
}

// fleetArtifact is the BENCH_PR6.json schema.
type fleetArtifact struct {
	Schema     string     `json:"schema"`
	GOOS       string     `json:"goos"`
	GOARCH     string     `json:"goarch"`
	GoMaxProcs int        `json:"gomaxprocs"`
	NumCPU     int        `json:"num_cpu"`
	Timestamp  string     `json:"timestamp"`
	Drills     []fleetRow `json:"drills"`
	// ParallelSpeedup is serial wall time over parallel wall time; 0 when
	// only the serial drill ran (-engine serial).
	ParallelSpeedup float64 `json:"parallel_speedup,omitempty"`
	// Deterministic records that the parallel drill's seals matched the
	// serial baseline's byte for byte.
	Deterministic bool `json:"deterministic"`
}

func drillOptions(sessions int) platform.FleetOptions {
	return platform.FleetOptions{
		Sessions: sessions,
		Model:    mlfw.MNIST(),
		SKU:      mali.G71MP8,
		Variant:  record.OursMDS,
		Seed:     42,
	}
}

func measureDrill(engine string, eng timesim.Engine, opts platform.FleetOptions) (*platform.FleetResult, fleetRow, error) {
	res, err := platform.FleetDrill(context.Background(), eng, opts)
	if err != nil {
		return nil, fleetRow{}, fmt.Errorf("%s drill: %w", engine, err)
	}
	row := fleetRow{
		Engine:       engine,
		Sessions:     len(res.Results),
		WallMS:       float64(res.Wall.Nanoseconds()) / 1e6,
		VirtualMS:    float64(res.VirtualTime.Nanoseconds()) / 1e6,
		Events:       res.Events,
		EventsPerSec: float64(res.Events) / res.Wall.Seconds(),
		Timestamps:   res.Batches.Timestamps,
		MaxBatch:     res.Batches.MaxWidth,
	}
	fmt.Printf("%-8s engine: %3d sessions  %8.1f ms wall  %10.0f events/s  batch width ≤%d  (%.1fs virtual)\n",
		engine, row.Sessions, row.WallMS, row.EventsPerSec, row.MaxBatch, res.VirtualTime.Seconds())
	return res, row, nil
}

// runFleet runs the fleet drill on the serial engine and, when engine is
// "parallel", again on the parallel engine — checking byte-identical seals
// and reporting the wall-clock speedup — then writes the artifact. When
// traceOut or healthOut is set, the selected engine's drill runs instrumented
// (the serial baseline stays bare), so the seal comparison also witnesses
// that observability never perturbs the recordings.
func runFleet(engine string, sessions int, outPath, traceOut, healthOut string) error {
	if sessions <= 1 {
		sessions = 16
	}
	fmt.Printf("=== fleet drill: %d record sessions on one discrete-event engine (GOMAXPROCS=%d) ===\n",
		sessions, runtime.GOMAXPROCS(0))
	opts := drillOptions(sessions)
	instrument := traceOut != "" || healthOut != ""

	serialOpts := opts
	if instrument && engine == "serial" {
		serialOpts.Instrument = true
	}
	serialRes, serialRow, err := measureDrill("serial", timesim.NewSerialEngine(), serialOpts)
	if err != nil {
		return err
	}
	instrumented := serialRes
	art := fleetArtifact{
		Schema: "grt-fleet/1", GOOS: runtime.GOOS, GOARCH: runtime.GOARCH,
		GoMaxProcs: runtime.GOMAXPROCS(0), NumCPU: runtime.NumCPU(),
		Timestamp: time.Now().UTC().Format(time.RFC3339),
		Drills:    []fleetRow{serialRow},
	}

	if engine == "parallel" {
		parOpts := opts
		parOpts.Instrument = instrument
		parRes, parRow, err := measureDrill("parallel", timesim.NewParallelEngine(), parOpts)
		if err != nil {
			return err
		}
		instrumented = parRes
		art.Drills = append(art.Drills, parRow)
		art.ParallelSpeedup = serialRow.WallMS / parRow.WallMS
		art.Deterministic = true
		for i := range serialRes.Seals {
			if parRes.Seals[i] != serialRes.Seals[i] {
				art.Deterministic = false
				return fmt.Errorf("fleet drill: session %d seal diverged between engines", i)
			}
		}
		fmt.Printf("parallel speedup: %.2fx (seals byte-identical across engines)\n", art.ParallelSpeedup)
	} else {
		art.Deterministic = true // one engine, trivially
	}

	if instrument {
		if err := writeFleetObservability(instrumented, traceOut, healthOut); err != nil {
			return err
		}
	}

	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	enc.SetIndent("", "  ")
	if err := enc.Encode(art); err != nil {
		return err
	}
	if err := os.WriteFile(outPath, buf.Bytes(), 0o644); err != nil {
		return err
	}
	fmt.Printf("wrote fleet artifact to %s\n", outPath)
	return nil
}

// writeFleetObservability exports an instrumented drill's Chrome trace and
// grt-health/1 report.
func writeFleetObservability(res *platform.FleetResult, traceOut, healthOut string) error {
	if traceOut != "" {
		f, err := os.Create(traceOut)
		if err != nil {
			return err
		}
		if err := obs.WriteFleetTrace(f, res.EngineTrace, res.Scopes...); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Printf("wrote fleet Chrome trace to %s (%d engine events; load in chrome://tracing)\n",
			traceOut, res.EngineTrace.Len())
	}
	if healthOut != "" {
		rep := cloud.EvaluateHealth(res.Fleet.Snapshot(), nil, cloud.DefaultHealthThresholds())
		for _, sc := range res.Scopes {
			rep.Sessions = append(rep.Sessions, cloud.EvaluateSessionHealth(sc.ID(), sc.Snapshot()))
		}
		f, err := os.Create(healthOut)
		if err != nil {
			return err
		}
		if err := rep.WriteJSON(f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Printf("wrote fleet health report to %s (state: %s)\n", healthOut, rep.State)
	}
	return nil
}
