package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"time"

	"gpurelay/internal/cloud"
	"gpurelay/internal/faultsim"
	"gpurelay/internal/mali"
	"gpurelay/internal/mlfw"
	"gpurelay/internal/platform"
	"gpurelay/internal/record"
)

// The -fleet -health-plan mode is the degraded-fleet drill: N record
// sessions on one engine with a device-health fault plan (thermal throttle,
// ECC, XID-79 fall-off) afflicting every fourth session. Every interrupted
// session must migrate to a different VM's GPU and still seal a recording
// byte-identical to its undisturbed baseline. The drill runs twice — the
// second pass is the run-twice determinism witness — and the artifact gates
// CI on a 1.0 migration success rate and zero non-identical recordings.

// degradedRow is one drill pass's measurement in the artifact.
type degradedRow struct {
	WallMS       float64 `json:"wall_ms"`
	VirtualMS    float64 `json:"virtual_ms"`
	Events       int64   `json:"events"`
	EventsPerSec float64 `json:"events_per_sec"`
}

// degradedArtifact is the BENCH_PR10.json schema.
type degradedArtifact struct {
	Schema     string `json:"schema"`
	GOOS       string `json:"goos"`
	GOARCH     string `json:"goarch"`
	GoMaxProcs int    `json:"gomaxprocs"`
	NumCPU     int    `json:"num_cpu"`
	Timestamp  string `json:"timestamp"`
	Plan       string `json:"plan"`
	Sessions   int    `json:"sessions"`
	Faulted    int    `json:"faulted"`
	// Interrupted sessions lost at least one device; Migrated counts the
	// cross-VM moves that kept them alive.
	Interrupted int `json:"interrupted"`
	Migrated    int `json:"migrated"`
	// MigrationSuccessRate is interrupted sessions that finished with a
	// byte-identical recording over interrupted sessions; the gate is 1.0.
	MigrationSuccessRate float64 `json:"migration_success_rate"`
	NonIdentical         int     `json:"non_identical"`
	// Deterministic records that the second pass's seals matched the first's
	// byte for byte.
	Deterministic bool                       `json:"deterministic"`
	HealthState   string                     `json:"health_state"`
	Runs          []degradedRow              `json:"runs"`
	PerSession    []platform.DegradedSession `json:"per_session"`
	Devices       []cloud.DeviceInfo         `json:"devices"`
}

// runDegradedFleet runs the degraded-fleet drill twice and writes the
// artifact. A migration success rate below 1.0, any non-byte-identical
// recording, a drill that provoked no migrations at all, or run-twice
// divergence is a hard failure (exit 1) — the artifact is still written so
// CI can archive the evidence.
func runDegradedFleet(plan *faultsim.Plan, planSpec string, sessions int, outPath, healthOut string) error {
	if sessions <= 1 {
		sessions = 100
	}
	fmt.Printf("=== degraded-fleet drill: %d record sessions under plan %q (GOMAXPROCS=%d) ===\n",
		sessions, planSpec, runtime.GOMAXPROCS(0))
	opts := platform.DegradedFleetOptions{
		Sessions:   sessions,
		Model:      mlfw.MNIST(),
		SKU:        mali.G71MP8,
		Variant:    record.OursMDS,
		Seed:       42,
		HealthPlan: plan,
		Instrument: true,
	}
	rows := make([]degradedRow, 0, 2)
	var first, second *platform.DegradedFleetResult
	for pass := 0; pass < 2; pass++ {
		res, err := platform.DegradedFleetDrill(context.Background(), opts)
		if err != nil {
			return fmt.Errorf("degraded drill pass %d: %w", pass+1, err)
		}
		rows = append(rows, degradedRow{
			WallMS:       float64(res.Wall.Nanoseconds()) / 1e6,
			VirtualMS:    float64(res.VirtualTime.Nanoseconds()) / 1e6,
			Events:       res.Events,
			EventsPerSec: float64(res.Events) / res.Wall.Seconds(),
		})
		if pass == 0 {
			first = res
		} else {
			second = res
		}
	}
	deterministic := true
	for i := range first.Seals {
		if first.Seals[i] != second.Seals[i] {
			deterministic = false
		}
	}
	migrationOK := 0
	for _, ps := range first.PerSession {
		if ps.Resumes > 0 && ps.ByteIdentical {
			migrationOK++
		}
	}
	rate := 0.0
	if first.Interrupted > 0 {
		rate = float64(migrationOK) / float64(first.Interrupted)
	}
	state := ""
	if first.Health != nil {
		state = string(first.Health.State)
	}
	art := degradedArtifact{
		Schema: "grt-degraded/1", GOOS: runtime.GOOS, GOARCH: runtime.GOARCH,
		GoMaxProcs: runtime.GOMAXPROCS(0), NumCPU: runtime.NumCPU(),
		Timestamp: time.Now().UTC().Format(time.RFC3339),
		Plan:      planSpec,
		Sessions:  first.Sessions, Faulted: first.Faulted,
		Interrupted: first.Interrupted, Migrated: first.Migrated,
		MigrationSuccessRate: rate, NonIdentical: first.NonIdentical,
		Deterministic: deterministic, HealthState: state,
		Runs: rows, PerSession: first.PerSession, Devices: first.Devices,
	}
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	enc.SetIndent("", "  ")
	if err := enc.Encode(art); err != nil {
		return err
	}
	if err := os.WriteFile(outPath, buf.Bytes(), 0o644); err != nil {
		return err
	}
	fmt.Printf("%d/%d sessions interrupted, %d migrations, %d non-identical, success rate %.2f\n",
		first.Interrupted, first.Sessions, first.Migrated, first.NonIdentical, rate)
	fmt.Printf("wrote degraded-fleet artifact to %s\n", outPath)

	if healthOut != "" && first.Health != nil {
		f, err := os.Create(healthOut)
		if err != nil {
			return err
		}
		if err := first.Health.WriteJSON(f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Printf("wrote degraded-fleet health report to %s (state: %s)\n", healthOut, state)
	}

	switch {
	case first.Interrupted == 0:
		return fmt.Errorf("degraded drill: the plan interrupted no session — nothing was drilled")
	case rate < 1:
		return fmt.Errorf("degraded drill: migration success rate %.2f < 1.0", rate)
	case first.NonIdentical != 0:
		return fmt.Errorf("degraded drill: %d recording(s) differ from baseline", first.NonIdentical)
	case !deterministic:
		return fmt.Errorf("degraded drill: run-twice seals diverged")
	}
	fmt.Println("gate passed: every interrupted session migrated, all recordings byte-identical, run-twice deterministic")
	return nil
}
