package gpurelay

import (
	"bytes"
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"gpurelay/internal/obs"
)

// TestRecordCachedHitByteIdentity: the second client asking for the same
// (SKU, stack, workload, input shape) is served from the store — zero VM
// time, zero RecordStats, byte-identical bundle — and the cached artifact
// still audits.
func TestRecordCachedHitByteIdentity(t *testing.T) {
	svc := NewService()
	a := NewClient("phone-a", MaliG71MP8)
	b := NewClient("phone-b", MaliG71MP8)

	rec1, out1, stats1, err := a.RecordCached(svc, MNIST(), RecordOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if out1 != CacheRecorded {
		t.Fatalf("first request outcome %q, want %q", out1, CacheRecorded)
	}
	if stats1.Jobs == 0 || stats1.RecordingDelay == 0 {
		t.Fatalf("leader reports empty stats: %+v", stats1)
	}

	rec2, out2, stats2, err := b.RecordCached(svc, MNIST(), RecordOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if out2 != CacheHit {
		t.Fatalf("second request outcome %q, want %q", out2, CacheHit)
	}
	if stats2.Jobs != 0 || stats2.RecordingDelay != 0 || stats2.MemSyncBytes != 0 {
		t.Fatalf("cache hit carries record stats: %+v", stats2)
	}
	p1, m1, k1 := rec1.Bundle()
	p2, m2, k2 := rec2.Bundle()
	if !bytes.Equal(p1, p2) || !bytes.Equal(m1, m2) || !bytes.Equal(k1, k2) {
		t.Fatal("cache hit is not byte-identical to the recorded artifact")
	}
	if err := rec2.Audit(); err != nil {
		t.Fatalf("cached recording fails audit: %v", err)
	}

	// Zero VM time for the hit: the fleet hosted exactly one session.
	snap := svc.Metrics()
	if got := snap.Counter(obs.MFleetSessions); got != 1 {
		t.Fatalf("%d fleet sessions for 1 record + 1 hit", got)
	}
	if got := snap.Counter(obs.MCacheLookups, obs.L("result", "hit")); got != 1 {
		t.Fatalf("hit counter %d", got)
	}
	entries, _, keys := svc.CacheStats()
	if entries != 1 || keys != 1 {
		t.Fatalf("store holds %d entries over %d keys, want 1/1", entries, keys)
	}

	// The cached recording replays like a directly recorded one.
	sess, err := b.NewReplaySession(rec2)
	if err != nil {
		t.Fatal(err)
	}
	in := make([]float32, 28*28)
	if err := sess.SetInput(in); err != nil {
		t.Fatal(err)
	}
	if _, err := sess.Run(); err != nil {
		t.Fatal(err)
	}
}

// TestRecordCachedCoalesces is the singleflight acceptance test: K
// concurrent identical requests produce exactly one record session, K
// byte-identical sealed results, and K−1 coalesce events.
func TestRecordCachedCoalesces(t *testing.T) {
	const K = 8
	svc := NewService()

	type reply struct {
		rec *Recording
		out CacheOutcome
	}
	replies := make(chan reply, K)
	runOne := func(id string) {
		c := NewClient(id, MaliG71MP8)
		rec, out, _, err := c.RecordCached(svc, MNIST(), RecordOptions{})
		if err != nil {
			t.Errorf("%s: %v", id, err)
			replies <- reply{}
			return
		}
		replies <- reply{rec, out}
	}

	// The leader admits first; followers arrive while its session runs, so
	// they all coalesce onto the one flight.
	go runOne("leader")
	waitForActiveVM(t, svc)
	var wg sync.WaitGroup
	for i := 1; i < K; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			runOne("follower-" + string(rune('a'+i)))
		}(i)
	}
	wg.Wait()

	var recorded, coalesced int
	var ref *Recording
	for i := 0; i < K; i++ {
		r := <-replies
		if r.rec == nil {
			t.Fatal("a caller failed")
		}
		switch r.out {
		case CacheRecorded:
			recorded++
		case CacheCoalesced:
			coalesced++
		default:
			t.Fatalf("unexpected outcome %q", r.out)
		}
		if ref == nil {
			ref = r.rec
			continue
		}
		p0, m0, k0 := ref.Bundle()
		p, m, k := r.rec.Bundle()
		if !bytes.Equal(p0, p) || !bytes.Equal(m0, m) || !bytes.Equal(k0, k) {
			t.Fatal("coalesced callers received differing sealed results")
		}
	}
	if recorded != 1 || coalesced != K-1 {
		t.Fatalf("%d recorded / %d coalesced for %d callers, want 1/%d", recorded, coalesced, K, K-1)
	}

	snap := svc.Metrics()
	if got := snap.Counter(obs.MFleetSessions); got != 1 {
		t.Fatalf("%d fleet sessions for %d coalesced callers", got, K)
	}
	if got := snap.Counter(obs.MCacheFills); got != 1 {
		t.Fatalf("%d cache fills", got)
	}
	if got := snap.Counter(obs.MCacheCoalesced); got != K-1 {
		t.Fatalf("coalesce counter %d, want %d", got, K-1)
	}
	var coalesceEvents int
	for _, e := range svc.FlightEvents() {
		if e.Kind == obs.FKCacheCoalesce {
			coalesceEvents++
		}
	}
	if coalesceEvents != K-1 {
		t.Fatalf("%d coalesce flight events, want %d", coalesceEvents, K-1)
	}
}

// TestRecordCachedLeaderCancellationPromotes: the leader's client hangs up
// mid-record; a waiting follower must be promoted to lead a fresh session
// and still come away with a valid recording.
func TestRecordCachedLeaderCancellationPromotes(t *testing.T) {
	svc := NewService()
	leader := NewClient("doomed-leader", MaliG71MP8)
	follower := NewClient("heir", MaliG71MP8)

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	leaderErr := make(chan error, 1)
	go func() {
		_, _, _, err := leader.RecordCachedContext(ctx, svc, MNIST(), RecordOptions{})
		leaderErr <- err
	}()
	waitForActiveVM(t, svc)

	type followRes struct {
		rec *Recording
		out CacheOutcome
		err error
	}
	followDone := make(chan followRes, 1)
	go func() {
		rec, out, _, err := follower.RecordCachedContext(context.Background(), svc, MNIST(), RecordOptions{})
		followDone <- followRes{rec, out, err}
	}()
	// Wait until the follower has registered its miss (it is attached, or
	// about to attach, to the doomed flight), then kill the leader.
	for deadline := time.Now().Add(10 * time.Second); ; {
		var missed bool
		for _, e := range svc.FlightEvents() {
			if e.Kind == obs.FKCacheMiss && e.Session == follower.ID {
				missed = true
			}
		}
		if missed {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("follower never reached the cache")
		}
		time.Sleep(time.Millisecond)
	}
	time.Sleep(5 * time.Millisecond)
	cancel()

	if err := <-leaderErr; err == nil {
		t.Fatal("canceled leader reported success")
	} else if !errors.Is(err, context.Canceled) {
		t.Fatalf("canceled leader: %v, want context.Canceled", err)
	}
	f := <-followDone
	if f.err != nil {
		t.Fatalf("promoted follower failed: %v", f.err)
	}
	// The follower either led the retry itself or — if it arrived after the
	// cancellation already unwound the flight — recorded fresh; both serve.
	if f.out != CacheRecorded {
		t.Fatalf("follower outcome %q, want %q", f.out, CacheRecorded)
	}
	if err := f.rec.Audit(); err != nil {
		t.Fatalf("follower's recording fails audit: %v", err)
	}
	if n := svc.ActiveVMs(); n != 0 {
		t.Fatalf("%d VMs still live", n)
	}
}

// TestQuarantinedCacheRegression is the poison interlock at the service
// surface: quarantining a cached recording purges it from the store, the
// next request misses and re-records, and — because the cache-derived
// session key and seed make the artifact deterministic — the re-recorded
// bytes carry the same poisoned fingerprint and are refused publication,
// so the service serves them uncached rather than re-caching poison.
func TestQuarantinedCacheRegression(t *testing.T) {
	svc := NewService()
	c := NewClient("phone-q", MaliG71MP8)
	// Pin the history per call so both record sessions run under identical
	// speculation state and reproduce the same bytes.
	opts := func() RecordOptions { return RecordOptions{History: NewSpeculationHistory()} }

	rec, out, _, err := c.RecordCached(svc, MNIST(), opts())
	if err != nil {
		t.Fatal(err)
	}
	if out != CacheRecorded {
		t.Fatalf("outcome %q", out)
	}
	if entries, _, _ := svc.CacheStats(); entries != 1 {
		t.Fatalf("%d cached entries", entries)
	}

	q := svc.QuarantineRecording(rec, errors.New("operator poisoned"))
	if q.Fingerprint == "" {
		t.Fatal("quarantine entry has no fingerprint")
	}
	if entries, _, _ := svc.CacheStats(); entries != 0 {
		t.Fatal("poisoned entry still resident")
	}

	// The next request must miss (never serve the poison), re-record, and
	// be refused publication under the same fingerprint.
	rec2, out2, stats2, err := c.RecordCached(svc, MNIST(), opts())
	if err != nil {
		t.Fatal(err)
	}
	if out2 != CacheRecorded {
		t.Fatalf("post-quarantine outcome %q, want a fresh record", out2)
	}
	if stats2.Jobs == 0 {
		t.Fatal("post-quarantine request did not actually record")
	}
	if err := rec2.Audit(); err != nil {
		t.Fatalf("re-recorded artifact fails audit: %v", err)
	}
	p1, m1, _ := rec.Bundle()
	p2, m2, _ := rec2.Bundle()
	if !bytes.Equal(p1, p2) || !bytes.Equal(m1, m2) {
		t.Fatal("deterministic re-record produced different bytes")
	}
	if entries, _, _ := svc.CacheStats(); entries != 0 {
		t.Fatal("poisoned fingerprint was re-cached")
	}
	snap := svc.Metrics()
	if got := snap.Counter(obs.MCacheRejects, obs.L("reason", "quarantined")); got < 1 {
		t.Fatalf("quarantine reject counter %d", got)
	}
}

// TestShardedServiceShedding: on a sharded service, a saturated partition
// rejects with the typed shedding error — carrying the shard and a
// retry-after hint — instead of plain ErrCapacity.
func TestShardedServiceShedding(t *testing.T) {
	svc := NewServiceWith(ServiceConfig{Shards: 2, Capacity: 1, QueueLimit: -1})
	if svc.NumShards() != 2 {
		t.Fatalf("%d shards", svc.NumShards())
	}
	holder := NewClient("holder", MaliG71MP8)
	done := make(chan error, 1)
	go func() {
		_, _, err := holder.Record(svc, MNIST(), RecordOptions{})
		done <- err
	}()
	waitForActiveVM(t, svc)

	// Same model ⇒ same cache key ⇒ same shard: the second admission lands
	// on the saturated partition and sheds.
	other := NewClient("other", MaliG71MP8)
	_, _, err := other.Record(svc, MNIST(), RecordOptions{})
	if err == nil {
		t.Fatal("saturated shard admitted")
	}
	if !errors.Is(err, ErrShedding) {
		t.Fatalf("saturated shard: %v, want ErrShedding", err)
	}
	var shed *SheddingError
	if !errors.As(err, &shed) {
		t.Fatalf("rejection is not a *SheddingError: %v", err)
	}
	if shed.Busy != 1 || shed.RetryAfter <= 0 {
		t.Fatalf("shed snapshot %+v", shed)
	}
	if err := <-done; err != nil {
		t.Fatalf("holder session: %v", err)
	}

	// A different workload hashes to its own shard and may still admit
	// while the first shard's history drains; the service as a whole keeps
	// serving after shedding.
	if _, _, err := holder.Record(svc, MNIST(), RecordOptions{}); err != nil {
		t.Fatalf("post-shed record: %v", err)
	}
}

// TestRecordCachedOnShardedService: the cache-first path and sharded
// admission compose — the leader records through its key's shard, and a
// later client on another shard-eligible key hits the shared store.
func TestRecordCachedOnShardedService(t *testing.T) {
	svc := NewServiceWith(ServiceConfig{Shards: 4})
	var sessions int64
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			c := NewClient("shard-phone-"+string(rune('a'+i)), MaliG71MP8)
			_, out, _, err := c.RecordCached(svc, MNIST(), RecordOptions{})
			if err != nil {
				t.Errorf("client %d: %v", i, err)
				return
			}
			if out == CacheRecorded {
				atomic.AddInt64(&sessions, 1)
			}
		}(i)
	}
	wg.Wait()
	if sessions != 1 {
		t.Fatalf("%d record sessions for one workload on a sharded service", sessions)
	}
	c := NewClient("late-phone", MaliG71MP8)
	rec, out, _, err := c.RecordCached(svc, MNIST(), RecordOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if out != CacheHit {
		t.Fatalf("late client outcome %q, want %q", out, CacheHit)
	}
	if err := rec.Audit(); err != nil {
		t.Fatal(err)
	}
}
