// Multi-GPU: compose four simulated GPUs with the platform builder, record
// four sessions concurrently on the parallel discrete-event engine, seal them
// into one bundle, then replay and verify every per-GPU recording — the
// fleet-scale flow the single-clock pipeline could not express.
//
// Determinism is the point: the parallel engine runs same-timestamp events on
// all host cores, yet every recording (and its HMAC seal) is byte-identical
// to what the serial engine produces. This example checks that, end to end.
package main

import (
	"bytes"
	"context"
	"fmt"
	"log"

	"gpurelay/internal/gpumem"
	"gpurelay/internal/mali"
	"gpurelay/internal/mlfw"
	"gpurelay/internal/netsim"
	"gpurelay/internal/platform"
	"gpurelay/internal/record"
	"gpurelay/internal/replay"
	"gpurelay/internal/tee"
	"gpurelay/internal/timesim"
	"gpurelay/internal/trace"
)

const (
	numGPU = 4
	seed   = 2026
)

func configs() []record.Config {
	cfgs := make([]record.Config, numGPU)
	for i := range cfgs {
		cfgs[i] = record.Config{
			Model: mlfw.MNIST(), SKU: mali.G71MP8, Network: netsim.WiFi,
			SessionKey:            platform.SessionKey(seed, i),
			ClientSeed:            uint64(i)*17 + 5,
			InjectMispredictionAt: -1,
			SessionID:             fmt.Sprintf("gpu-%d", i),
		}
	}
	return cfgs
}

func recordFleet(build func(*platform.Builder) *platform.Builder) []*record.Result {
	p := build(platform.NewBuilder().WithNumGPU(numGPU)).Build()
	results, err := p.RecordAll(context.Background(), configs())
	if err != nil {
		log.Fatalf("record: %v", err)
	}
	fmt.Printf("  %d sessions, %d engine events, %.1f s virtual time\n",
		len(results), p.Engine().Events(), p.Engine().Now().Seconds())
	return results
}

func main() {
	// Phase 1 — record the same four sessions on both engines. The serial
	// engine interleaves them one event at a time; the parallel engine runs
	// each timestamp's events on all host cores.
	fmt.Println("recording 4× MNIST on the serial engine...")
	serial := recordFleet((*platform.Builder).WithSerialEngine)
	fmt.Println("recording 4× MNIST on the parallel engine...")
	parallel := recordFleet((*platform.Builder).WithParallelEngine)
	for i := range serial {
		if serial[i].Signed.MAC != parallel[i].Signed.MAC {
			log.Fatalf("gpu %d: engines disagree — determinism broken", i)
		}
	}
	fmt.Println("  seals byte-identical across engines ✓")

	// Phase 2 — seal: bundle the per-GPU recordings into one artifact.
	// (One GPU would produce the classic grtrecord bundle, byte for byte.)
	entries := make([]platform.Entry, numGPU)
	for i, res := range parallel {
		entries[i] = platform.Entry{
			Payload: res.Signed.Payload,
			MAC:     res.Signed.MAC[:],
			Key:     platform.SessionKey(seed, i),
		}
	}
	var bundle bytes.Buffer
	if err := platform.WriteBundle(&bundle, entries); err != nil {
		log.Fatalf("bundle: %v", err)
	}
	fmt.Printf("sealed %d recordings into a %d-byte bundle\n", numGPU, bundle.Len())

	// Phase 3 — replay + verify: re-open the bundle, verify every recording
	// under its key, and replay each on its own GPU, again sharing one
	// parallel engine. A flipped bit anywhere fails verification.
	back, err := platform.ReadBundle(&bundle)
	if err != nil {
		log.Fatalf("bundle: %v", err)
	}
	eng := timesim.NewParallelEngine()
	for i, e := range back {
		i, e := i, e
		signed := &trace.Signed{Payload: e.Payload}
		copy(signed.MAC[:], e.MAC)
		eng.Go(uint64(i), func(tm timesim.Time) error {
			rec, err := trace.Verify(signed, e.Key)
			if err != nil {
				return fmt.Errorf("gpu %d: %w", i, err)
			}
			gpu := mali.New(mali.G71MP8, gpumem.NewPool(rec.PoolSize), tm, 99)
			rp, err := replay.New(signed, e.Key, gpu, tee.NewController(gpu), tm)
			if err != nil {
				return fmt.Errorf("gpu %d: %w", i, err)
			}
			res, err := rp.Run()
			if err != nil {
				return fmt.Errorf("gpu %d: %w", i, err)
			}
			fmt.Printf("  gpu %d: verified, replayed %d events in %.2f ms (virtual)\n",
				i, res.Events, float64(res.Delay.Microseconds())/1000)
			return nil
		})
	}
	if err := eng.Run(); err != nil {
		log.Fatalf("replay: %v", err)
	}
	fmt.Println("all recordings verified and replayed ✓")
}
