// Multi-SKU: demonstrates why GR-T exists. Recordings are bound to exact
// GPU SKUs (§2.4): shader binaries are tiled for a specific core count and
// page tables use SKU-specific formats, so a recording made for one GPU
// cannot replay on another. GR-T's cloud drives each client's own GPU
// through a devicetree-selected driver, so every device gets a recording for
// exactly its SKU without the developer owning any of them.
package main

import (
	"fmt"
	"log"

	"gpurelay"
)

func main() {
	svc := gpurelay.NewService()
	phones := []struct {
		id  string
		sku *gpurelay.SKU
	}{
		{"flagship", gpurelay.MaliG76MP10},
		{"midrange", gpurelay.MaliG71MP8},
		{"budget", gpurelay.MaliG52MP2},
	}

	recs := map[string]*gpurelay.Recording{}
	clients := map[string]*gpurelay.Client{}
	for _, p := range phones {
		client := gpurelay.NewClient(p.id, p.sku)
		clients[p.id] = client
		rec, stats, err := client.Record(svc, gpurelay.MNIST(), gpurelay.RecordOptions{})
		if err != nil {
			log.Fatalf("%s: record: %v", p.id, err)
		}
		recs[p.id] = rec
		fmt.Printf("%-9s (%s): recorded for product %#x in %.1fs\n",
			p.id, p.sku.Name, rec.ProductID, stats.RecordingDelay.Seconds())
	}

	// Each device replays its own recording fine.
	fmt.Println("\nreplaying own recordings:")
	for _, p := range phones {
		sess, err := clients[p.id].NewReplaySession(recs[p.id])
		if err != nil {
			log.Fatalf("%s: %v", p.id, err)
		}
		input := make([]float32, 28*28)
		if err := sess.SetInput(input); err != nil {
			log.Fatal(err)
		}
		if _, err := sess.Run(); err != nil {
			log.Fatalf("%s: replay: %v", p.id, err)
		}
		fmt.Printf("  %-9s ok\n", p.id)
	}

	// Cross-SKU replay is refused before it can corrupt anything.
	fmt.Println("\nattempting cross-SKU replay (midrange recording on budget phone):")
	if _, err := clients["budget"].NewReplaySession(recs["midrange"]); err != nil {
		fmt.Printf("  rejected as expected: %v\n", err)
	} else {
		log.Fatal("cross-SKU replay was accepted — SKU binding broken")
	}
}
