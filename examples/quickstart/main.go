// Quickstart: record an MNIST workload once via the cloud, then replay it
// inside the TEE on fresh input — the end-to-end GR-T flow of the paper's
// Figure 1(b).
package main

import (
	"fmt"
	"log"

	"gpurelay"
)

func main() {
	// A simulated phone with the paper's client GPU (Mali G71 MP8, as on
	// the Hikey960), and the GPU-less cloud recording service.
	client := gpurelay.NewClient("quickstart-phone", gpurelay.MaliG71MP8)
	svc := gpurelay.NewService()

	// Phase 1 — record (once, online): the cloud dry runs the GPU stack
	// against this device's GPU and returns a signed recording. The dry
	// run never sees real input or model parameters.
	fmt.Println("recording MNIST via the cloud (WiFi, all optimizations)...")
	rec, stats, err := client.Record(svc, gpurelay.MNIST(), gpurelay.RecordOptions{})
	if err != nil {
		log.Fatalf("record: %v", err)
	}
	fmt.Printf("  recorded %d GPU jobs in %.1fs (virtual time)\n",
		stats.Jobs, stats.RecordingDelay.Seconds())
	fmt.Printf("  blocking round trips: %d   memory sync: %.2f MB   energy: %.2f J\n",
		stats.Link.BlockingRTTs, float64(stats.MemSyncBytes)/1e6, float64(stats.Energy))

	// Phase 2 — replay (repeatedly, offline): inside the TEE, no GPU
	// stack, no cloud.
	sess, err := client.NewReplaySession(rec)
	if err != nil {
		log.Fatalf("replay session: %v", err)
	}

	// Load the (TEE-resident) model parameters — here just deterministic
	// pseudo-random weights standing in for a trained model.
	state := uint64(7)
	for _, r := range sess.WeightRegions() {
		w := make([]float32, r.Elems)
		for i := range w {
			state ^= state << 13
			state ^= state >> 7
			state ^= state << 17
			w[i] = (float32(state%2048)/1024 - 1) / 8
		}
		if err := sess.SetWeights(r.Name, w); err != nil {
			log.Fatalf("weights %s: %v", r.Name, err)
		}
	}

	// A synthetic "handwritten digit".
	input := make([]float32, 28*28)
	for i := range input {
		input[i] = float32((i * 37) % 256)
	}
	if err := sess.SetInput(input); err != nil {
		log.Fatalf("set input: %v", err)
	}
	res, err := sess.Run()
	if err != nil {
		log.Fatalf("replay: %v", err)
	}
	out, err := sess.Output()
	if err != nil {
		log.Fatalf("output: %v", err)
	}

	fmt.Printf("replayed in %.1fms (vs seconds-long recording), %d events, %d reads verified\n",
		float64(res.Delay.Microseconds())/1000, res.Events, res.VerifiedReads)
	best, bestP := 0, float32(0)
	for i, p := range out {
		if p > bestP {
			best, bestP = i, p
		}
	}
	fmt.Printf("class probabilities: %.4v\n", out)
	fmt.Printf("predicted class: %d (p=%.3f)\n", best, bestP)
}
