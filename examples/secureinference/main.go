// Secure inference: the motivating deployment of the paper — an app whose
// model parameters and user inputs must never leave the TEE. The recording
// is produced by the cloud WITHOUT the parameters (dry run on zeros, §2.3
// input independence); the real parameters are provisioned only inside the
// TEE and injected at replay time.
package main

import (
	"fmt"
	"log"

	"gpurelay"
)

// provisionSecretModel stands in for the app vendor delivering encrypted
// parameters straight into the TEE (e.g. sealed storage).
func provisionSecretModel(sess *gpurelay.ReplaySession) error {
	state := uint64(0xFEEDFACE)
	next := func() float32 {
		state ^= state << 13
		state ^= state >> 7
		state ^= state << 17
		return (float32(state%2048)/1024 - 1) / 16
	}
	for _, r := range sess.WeightRegions() {
		w := make([]float32, r.Elems)
		for i := range w {
			w[i] = next()
		}
		if err := sess.SetWeights(r.Name, w); err != nil {
			return fmt.Errorf("provisioning %s: %v", r.Name, err)
		}
	}
	return nil
}

func main() {
	client := gpurelay.NewClient("secure-phone", gpurelay.MaliG71MP8)
	svc := gpurelay.NewService()

	// One online recording; speculation history shared so a second model
	// would record even faster.
	hist := gpurelay.NewSpeculationHistory()
	rec, stats, err := client.Record(svc, gpurelay.MNIST(), gpurelay.RecordOptions{
		Network: gpurelay.Cellular, History: hist,
	})
	if err != nil {
		log.Fatalf("record: %v", err)
	}
	fmt.Printf("recorded over cellular in %.1fs; the cloud saw zero parameters and zero inputs\n",
		stats.RecordingDelay.Seconds())

	sess, err := client.NewReplaySession(rec)
	if err != nil {
		log.Fatal(err)
	}
	if err := provisionSecretModel(sess); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("provisioned %d parameter regions inside the TEE\n", len(sess.WeightRegions()))

	// An inference service loop: each user input is classified inside the
	// TEE; the OS never observes data, parameters, or results.
	for k := 0; k < 5; k++ {
		input := make([]float32, 28*28)
		for i := range input {
			input[i] = float32((i*(k+3) + k*k) % 251)
		}
		if err := sess.SetInput(input); err != nil {
			log.Fatal(err)
		}
		res, err := sess.Run()
		if err != nil {
			log.Fatalf("inference %d: %v", k, err)
		}
		out, err := sess.Output()
		if err != nil {
			log.Fatal(err)
		}
		best, bestP := 0, float32(0)
		for i, p := range out {
			if p > bestP {
				best, bestP = i, p
			}
		}
		fmt.Printf("  request %d: class %d (p=%.3f) in %.2fms\n",
			k, best, bestP, float64(res.Delay.Microseconds())/1000)
	}
	fmt.Printf("total client time (record + 5 inferences): %.1fs virtual\n",
		client.Elapsed().Seconds())
}
