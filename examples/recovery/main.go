// Recovery, in three acts.
//
// Act 1 — the §7.3 misprediction experiment. Speculation predicts register
// values from commit history; a wrong prediction must be detected when the
// actual values arrive, and both the cloud driver and the client GPU roll
// back by replaying the interaction log. This example injects an artificial
// misprediction and reports the detection and rollback cost.
//
// Act 2 — session loss. A link outage longer than the liveness timeout kills
// the record session mid-flight; RecordResumable re-admits with backoff,
// restores the last job-boundary checkpoint, re-syncs the fresh cloud driver
// by replaying the checkpointed log (the same §4.2 rollback machinery), and
// stitches a recording byte-identical to an uninterrupted run — verified
// here by replaying both to identical outputs.
//
// Act 3 — device loss. The GPU itself falls off the bus mid-record (the
// XID-79 shape). The loss surfaces as ErrDeviceLost, the dead device is
// marked so admission never offers it again, and the resumed session lands
// on a *different* VM's GPU — cross-VM migration, still sealing bytes
// identical to the undisturbed run.
package main

import (
	"bytes"
	"context"
	"fmt"
	"log"

	"gpurelay"
)

func main() {
	client := gpurelay.NewClient("recovery-phone", gpurelay.MaliG71MP8)
	svc := gpurelay.NewService()
	hist := gpurelay.NewSpeculationHistory()

	// Warm run: builds the speculation history (k=3 identical outcomes
	// required before any prediction).
	warm, stats, err := client.Record(svc, gpurelay.MNIST(), gpurelay.RecordOptions{History: hist})
	if err != nil {
		log.Fatal(err)
	}
	_ = warm
	fmt.Printf("warm run: %.1fs, %d speculated commits, %d mispredictions\n",
		stats.RecordingDelay.Seconds(), stats.Shim.AsyncCommits, stats.Shim.Mispredictions)

	// Fault-injected run: the 10th speculated commit is forced to
	// mispredict.
	_, faulty, err := client.Record(svc, gpurelay.MNIST(), gpurelay.RecordOptions{
		History: hist, InjectMispredictionAt: 10,
	})
	if err != nil {
		log.Fatal(err)
	}
	if faulty.Shim.Mispredictions != 1 {
		log.Fatalf("injected misprediction not detected: %+v", faulty.Shim)
	}
	fmt.Printf("faulty run: misprediction detected and recovered\n")
	fmt.Printf("  rollback delay: %.2fs (paper: 1s MNIST / 3s VGG16, dominated by driver\n"+
		"  reload and job recompilation on the cloud)\n", faulty.Shim.RecoveryTime.Seconds())
	fmt.Printf("  total recording delay: %.1fs (vs %.1fs without the fault)\n",
		faulty.RecordingDelay.Seconds(), stats.RecordingDelay.Seconds())

	// The recording produced by the faulty run is still valid: it logged
	// actual GPU responses throughout.
	_, clean, err := client.Record(svc, gpurelay.MNIST(), gpurelay.RecordOptions{History: hist})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("follow-up run: %.1fs, %d mispredictions (history recovered)\n",
		clean.RecordingDelay.Seconds(), clean.Shim.Mispredictions)

	// ---- Act 2: link outage mid-record, checkpoint resume ----

	// Baseline: an undisturbed session. A fresh client and service give the
	// chaos run below the same session seed, so the two recordings are
	// directly comparable.
	fmt.Println()
	baseClient := gpurelay.NewClient("resume-phone", gpurelay.MaliG71MP8)
	baseline, _, err := baseClient.Record(gpurelay.NewService(), gpurelay.MNIST(), gpurelay.RecordOptions{})
	if err != nil {
		log.Fatal(err)
	}

	// Chaos run: the "outage" preset keeps the link dark past its liveness
	// timeout ~0.9s in, killing the session mid-record.
	plan, err := gpurelay.ParseFaultPlan("outage")
	if err != nil {
		log.Fatal(err)
	}
	chaosClient := gpurelay.NewClient("resume-phone", gpurelay.MaliG71MP8)
	checkpoints, lastJob := 0, -1
	rec, rstats, err := chaosClient.RecordResumable(context.Background(), gpurelay.NewService(), gpurelay.MNIST(),
		gpurelay.ResilienceOptions{
			Faults: plan,
			OnCheckpoint: func(cp *gpurelay.Checkpoint) {
				checkpoints++
				lastJob = cp.Job()
			},
		})
	if err != nil {
		log.Fatal(err)
	}
	if rstats.Resumes < 1 {
		log.Fatalf("expected at least one resume, got %d", rstats.Resumes)
	}
	fmt.Printf("outage run: session lost and resumed %d time(s); %d checkpoints, last at job %d\n",
		rstats.Resumes, checkpoints, lastJob)

	// The stitched recording must be indistinguishable from the baseline.
	basePayload, _, _ := baseline.Bundle()
	stitched, _, _ := rec.Bundle()
	if !bytes.Equal(basePayload, stitched) {
		log.Fatalf("stitched recording differs from uninterrupted run (%d vs %d bytes)",
			len(stitched), len(basePayload))
	}
	fmt.Printf("stitched recording: byte-identical to the uninterrupted run (%d bytes)\n", len(stitched))

	// And it replays to identical outputs on fresh input.
	base := mustOutputs(baseClient, baseline)
	resumed := mustOutputs(chaosClient, rec)
	for i := range base {
		if base[i] != resumed[i] {
			log.Fatalf("replay outputs differ at %d: %v vs %v", i, base[i], resumed[i])
		}
	}
	fmt.Printf("replayed both recordings: outputs identical (%d probabilities)\n", len(resumed))

	// ---- Act 3: the GPU dies, the session migrates ----

	// The "falloff" preset drops the device off the bus ~0.6s in. Unlike
	// Act 2 this is not the link's fault: the loss wraps ErrDeviceLost, the
	// silicon is marked dead, and re-admission must land elsewhere.
	fmt.Println()
	devPlan, err := gpurelay.ParseFaultPlan("falloff")
	if err != nil {
		log.Fatal(err)
	}
	devSvc := gpurelay.NewService()
	devClient := gpurelay.NewClient("resume-phone", gpurelay.MaliG71MP8)
	devRec, devStats, err := devClient.RecordResumable(context.Background(), devSvc, gpurelay.MNIST(),
		gpurelay.ResilienceOptions{Faults: devPlan})
	if err != nil {
		log.Fatal(err)
	}
	if devStats.Resumes < 1 {
		log.Fatalf("the fall-off never killed the session (resumes = %d)", devStats.Resumes)
	}
	for _, d := range devSvc.Devices() {
		if d.State != "healthy" || d.Migrations > 0 {
			fmt.Printf("device %s: %s, %d fall-off(s), %d migration(s) away from it\n",
				d.ID, d.State, d.FallOffs, d.Migrations)
		}
	}
	devPayload, _, _ := devRec.Bundle()
	if !bytes.Equal(basePayload, devPayload) {
		log.Fatalf("migrated recording differs from uninterrupted run (%d vs %d bytes)",
			len(devPayload), len(basePayload))
	}
	fmt.Printf("migrated session: survived the dead GPU on different silicon, recording still byte-identical (%d bytes)\n",
		len(devPayload))
}

// mustOutputs replays a recording on deterministic synthetic weights and
// input and returns the inference output.
func mustOutputs(client *gpurelay.Client, rec *gpurelay.Recording) []float32 {
	sess, err := client.NewReplaySession(rec)
	if err != nil {
		log.Fatal(err)
	}
	state := uint64(7)
	next := func() float32 {
		state ^= state << 13
		state ^= state >> 7
		state ^= state << 17
		return (float32(state%2048)/1024 - 1) / 8
	}
	for _, r := range sess.WeightRegions() {
		w := make([]float32, r.Elems)
		for i := range w {
			w[i] = next()
		}
		if err := sess.SetWeights(r.Name, w); err != nil {
			log.Fatal(err)
		}
	}
	input := make([]float32, 28*28)
	for i := range input {
		input[i] = float32(i % 256)
	}
	if err := sess.SetInput(input); err != nil {
		log.Fatal(err)
	}
	if _, err := sess.Run(); err != nil {
		log.Fatal(err)
	}
	out, err := sess.Output()
	if err != nil {
		log.Fatal(err)
	}
	return out
}
