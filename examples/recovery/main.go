// Recovery: the §7.3 misprediction experiment. Speculation predicts register
// values from commit history; a wrong prediction must be detected when the
// actual values arrive, and both the cloud driver and the client GPU roll
// back by replaying the interaction log. This example injects an artificial
// misprediction and reports the detection and rollback cost.
package main

import (
	"fmt"
	"log"

	"gpurelay"
)

func main() {
	client := gpurelay.NewClient("recovery-phone", gpurelay.MaliG71MP8)
	svc := gpurelay.NewService()
	hist := gpurelay.NewSpeculationHistory()

	// Warm run: builds the speculation history (k=3 identical outcomes
	// required before any prediction).
	warm, stats, err := client.Record(svc, gpurelay.MNIST(), gpurelay.RecordOptions{History: hist})
	if err != nil {
		log.Fatal(err)
	}
	_ = warm
	fmt.Printf("warm run: %.1fs, %d speculated commits, %d mispredictions\n",
		stats.RecordingDelay.Seconds(), stats.Shim.AsyncCommits, stats.Shim.Mispredictions)

	// Fault-injected run: the 10th speculated commit is forced to
	// mispredict.
	_, faulty, err := client.Record(svc, gpurelay.MNIST(), gpurelay.RecordOptions{
		History: hist, InjectMispredictionAt: 10,
	})
	if err != nil {
		log.Fatal(err)
	}
	if faulty.Shim.Mispredictions != 1 {
		log.Fatalf("injected misprediction not detected: %+v", faulty.Shim)
	}
	fmt.Printf("faulty run: misprediction detected and recovered\n")
	fmt.Printf("  rollback delay: %.2fs (paper: 1s MNIST / 3s VGG16, dominated by driver\n"+
		"  reload and job recompilation on the cloud)\n", faulty.Shim.RecoveryTime.Seconds())
	fmt.Printf("  total recording delay: %.1fs (vs %.1fs without the fault)\n",
		faulty.RecordingDelay.Seconds(), stats.RecordingDelay.Seconds())

	// The recording produced by the faulty run is still valid: it logged
	// actual GPU responses throughout.
	_, clean, err := client.Record(svc, gpurelay.MNIST(), gpurelay.RecordOptions{History: hist})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("follow-up run: %.1fs, %d mispredictions (history recovered)\n",
		clean.RecordingDelay.Seconds(), clean.Shim.Mispredictions)
}
