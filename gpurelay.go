// Package gpurelay is a full-system reproduction of "Safe and Practical GPU
// Computation in TrustZone" (Park & Lin, EuroSys '23) — the GR-T system —
// as a simulation-backed Go library.
//
// GR-T runs GPU compute inside a TrustZone TEE without porting the GPU
// software stack into it. A workload is executed in two phases:
//
//   - Record (once, online): the client's TEE asks a cloud service to dry
//     run the GPU stack; the cloud's driver accesses the client's physical
//     GPU over the network while every CPU/GPU interaction is logged. Three
//     I/O optimizations — register-access deferral, speculation, and
//     polling-loop offload — plus meta-only memory synchronization make
//     this practical over wireless latencies.
//
//   - Replay (repeatedly, offline): the TEE replays the signed recording
//     against the GPU on fresh input, with no GPU stack and no cloud.
//
// The hardware and software environment of the paper (Mali Bifrost GPU,
// kbase driver, ACL runtime, TrustZone, NetEm-shaped networking) is
// reproduced by simulators under internal/; all delays are virtual time, so
// recordings that "take" hundreds of seconds run in milliseconds.
//
// Basic use:
//
//	client := gpurelay.NewClient("phone-1", gpurelay.MaliG71MP8)
//	svc := gpurelay.NewService()
//	rec, stats, err := client.Record(svc, gpurelay.MNIST(), gpurelay.RecordOptions{})
//	sess, err := client.NewReplaySession(rec)
//	err = sess.SetInput(pixels)
//	result, err := sess.Run()
//	probs, err := sess.Output()
package gpurelay

import (
	"context"
	"crypto/hmac"
	"crypto/rand"
	"crypto/sha256"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"sync"
	"time"

	"gpurelay/internal/audit"
	"gpurelay/internal/castore"
	"gpurelay/internal/cloud"
	"gpurelay/internal/gpumem"
	"gpurelay/internal/grterr"
	"gpurelay/internal/mali"
	"gpurelay/internal/mlfw"
	"gpurelay/internal/netsim"
	"gpurelay/internal/obs"
	"gpurelay/internal/record"
	"gpurelay/internal/replay"
	"gpurelay/internal/shim"
	"gpurelay/internal/tee"
	"gpurelay/internal/timesim"
	"gpurelay/internal/trace"
)

// Sentinel errors. Failures anywhere in the stack — admission control in
// the cloud service, attestation in the client, signature verification in
// the trace layer, SKU binding in the replayer — wrap these, so callers
// distinguish them with errors.Is across layers instead of string-matching.
var (
	// ErrAttestation: the launched VM's measurement did not match the
	// client's expectation for the image and GPU.
	ErrAttestation = grterr.ErrAttestation
	// ErrCapacity: the recording service's VM pool and admission queue
	// are both full; retry later.
	ErrCapacity = grterr.ErrCapacity
	// ErrSessionLimit: this client already holds its maximum number of
	// concurrent recording sessions.
	ErrSessionLimit = grterr.ErrSessionLimit
	// ErrBadRecording: a recording failed signature or format
	// verification.
	ErrBadRecording = grterr.ErrBadRecording
	// ErrSKUMismatch: a recording (or cloud image) is bound to a
	// different GPU SKU than the device at hand.
	ErrSKUMismatch = grterr.ErrSKUMismatch
	// ErrSessionLost: a record session was torn down mid-flight (link
	// liveness timeout or recording-VM death). RecordResumable retries
	// these automatically; a plain Record surfaces them.
	ErrSessionLost = grterr.ErrSessionLost
	// ErrDeviceLost: the GPU itself failed under the session — an
	// uncorrectable ECC fault or an XID-79 bus fall-off. Wraps
	// ErrSessionLost, so RecordResumable's resume machinery fires
	// unchanged; the re-admitted session lands on a *different* VM's GPU
	// (the failed device is never scheduled again) and the stitched
	// recording stays byte-identical. An ECC loss additionally wraps
	// ErrBadRecording: without a resume path the poisoned run fails
	// closed.
	ErrDeviceLost = grterr.ErrDeviceLost
	// ErrCheckpointCorrupt: a resume checkpoint failed authentication,
	// parsing, or resync verification — the lost session cannot be
	// reproduced from it.
	ErrCheckpointCorrupt = grterr.ErrCheckpointCorrupt
	// ErrShedding: a sharded service's target partition had its pool and
	// queue both full. The rejection is a *SheddingError carrying a
	// retry-after hint; the cache key pins the workload to its shard, so
	// retry this service later rather than failing over.
	ErrShedding = grterr.ErrShedding
)

// SheddingError is the typed rejection a sharded service returns when a
// partition sheds load; errors.As extracts the shard and retry-after hint.
type SheddingError = cloud.SheddingError

// SKU identifies a mobile GPU hardware model.
type SKU = mali.SKU

// The simulated GPU catalog. MaliG71MP8 is the paper's client GPU
// (Hikey960).
var (
	MaliG71MP8  = mali.G71MP8
	MaliG72MP12 = mali.G72MP12
	MaliG52MP2  = mali.G52MP2
	MaliG76MP10 = mali.G76MP10
)

// Network is a network condition between client and cloud.
type Network = netsim.Condition

// The paper's two evaluated network conditions (§7.2).
var (
	WiFi     = netsim.WiFi
	Cellular = netsim.Cellular
)

// Model is a hardware-neutral ML workload (late-bound, as shipped by real
// frameworks).
type Model = mlfw.Model

// The six evaluation networks of the paper (Table 1).
var (
	MNIST      = mlfw.MNIST
	AlexNet    = mlfw.AlexNet
	MobileNet  = mlfw.MobileNet
	SqueezeNet = mlfw.SqueezeNet
	ResNet12   = mlfw.ResNet12
	VGG16      = mlfw.VGG16
)

// Benchmarks returns all six evaluation models.
func Benchmarks() []*Model { return mlfw.Benchmarks() }

// Variant selects the recorder implementation (§7.2): Naive, OursM, OursMD,
// or OursMDS (all optimizations, the GR-T default).
type Variant = record.Variant

// Recorder variants.
const (
	Naive   = record.Naive
	OursM   = record.OursM
	OursMD  = record.OursMD
	OursMDS = record.OursMDS
)

// RecordStats reports a record run's measurements (recording delay,
// blocking round trips, synchronization traffic, speculation statistics,
// client energy).
type RecordStats = record.Stats

// Scope collects one session's telemetry: a private metrics registry
// (counters, gauges, histograms) plus a span timeline on the session's
// virtual clock, exportable as Chrome trace_event JSON via
// Scope.WriteChromeTrace. A nil *Scope is a true no-op: instrumented
// sessions and uninstrumented ones produce bit-identical recordings and
// delays.
type Scope = obs.Scope

// ScopeOptions tunes a telemetry Scope (span capacity, fleet registry).
type ScopeOptions = obs.Options

// MetricsSnapshot is a point-in-time copy of a metrics registry, readable
// (Counter, Gauge, CounterTotal) and exportable as Prometheus text
// (WritePrometheus).
type MetricsSnapshot = obs.Snapshot

// MetricsRegistry is a live metrics registry (the type behind
// Service.FleetRegistry and ScopeOptions.Fleet).
type MetricsRegistry = obs.Registry

// MetricLabel selects one series of a labeled metric when reading a
// MetricsSnapshot, e.g. Counter("grt_net_rtts_total", Label("mode", "blocking")).
type MetricLabel = obs.Label

// Label builds a MetricLabel.
func Label(key, value string) MetricLabel { return obs.L(key, value) }

// NewScope creates a telemetry scope for one session. Pass it via
// RecordOptions.Obs or ReplaySession.Instrument; the session binds its
// virtual clock to the scope when it starts.
func NewScope(id string) *Scope { return obs.NewScope(id, obs.Options{}) }

// NewScopeWith creates a telemetry scope with explicit options.
func NewScopeWith(id string, opts ScopeOptions) *Scope { return obs.NewScope(id, opts) }

// FlightEvent is one structured flight-recorder journal entry: a virtual
// timestamp, the session it belongs to, a stable kind token (admission,
// sync, spec_commit, fault, resync, checkpoint, resume, ingest_reject, …),
// and numeric arguments.
type FlightEvent = obs.FlightEvent

// FlightRecorder is a bounded, thread-safe ring of FlightEvents. A nil
// *FlightRecorder is a true no-op, mirroring Scope's nil semantics.
type FlightRecorder = obs.FlightRecorder

// NewFlightRecorder creates a flight recorder retaining at most capacity
// events (0 → 4096).
func NewFlightRecorder(capacity int) *FlightRecorder { return obs.NewFlightRecorder(capacity) }

// ReadFlight decodes a flight journal from its JSON Lines form.
func ReadFlight(r io.Reader) ([]FlightEvent, error) { return obs.ReadFlightJSONL(r) }

// DiagBundle is a diagnostic bundle: the sealed evidence artifact the
// service captures on failure paths (ingest rejection, checkpoint
// corruption), packaging the flight-recorder tail, a metrics snapshot, and
// the quarantine entry when one exists.
type DiagBundle = audit.Bundle

// SealedDiagBundle pairs a DiagBundle with its HMAC seal.
type SealedDiagBundle = audit.SealedBundle

// EncodeDiagBundle writes a sealed bundle as a GRTD file (the format grtdiag
// bundle reads).
func EncodeDiagBundle(w io.Writer, sb SealedDiagBundle, key []byte) error {
	return audit.EncodeBundleFile(w, sb.Signed, key)
}

// OpenDiagBundleFile reads a GRTD file, verifies its seal, and decodes the
// bundle.
func OpenDiagBundleFile(r io.Reader) (*DiagBundle, error) {
	payload, mac, key, err := audit.DecodeBundleFile(r)
	if err != nil {
		return nil, err
	}
	return audit.OpenBundle(payload, mac, key)
}

// HealthThresholds tunes the fleet health rollup (ServiceConfig.Health).
type HealthThresholds = cloud.HealthThresholds

// HealthReport is one window's fleet health rollup: a threshold state
// (healthy, degraded, unhealthy), the reasons, and the window's SLO summary.
type HealthReport = cloud.HealthReport

// HealthState is a rollup verdict: healthy, degraded, or unhealthy.
type HealthState = cloud.HealthState

// Health states.
const (
	HealthHealthy   = cloud.Healthy
	HealthDegraded  = cloud.Degraded
	HealthUnhealthy = cloud.Unhealthy
)

// SessionHealth is one session's health row inside a HealthReport.
type SessionHealth = cloud.SessionHealth

// Recording is a signed, replayable capture of one workload on one GPU SKU.
type Recording struct {
	signed *trace.Signed
	key    []byte
	// Workload and ProductID echo the recording header for display.
	Workload  string
	ProductID uint32
}

// Bundle exports the recording's signed payload, authentication tag, and
// session key for storage. A real deployment would keep the key in TEE
// secure storage; the demo CLIs bundle all three in one file.
func (r *Recording) Bundle() (payload, mac, key []byte) {
	return r.signed.Payload, r.signed.MAC[:], r.key
}

// RecordingFromBundle reconstructs a Recording from Bundle output, verifying
// the signature.
func RecordingFromBundle(payload, mac, key []byte) (*Recording, error) {
	if len(mac) != 32 {
		return nil, fmt.Errorf("gpurelay: MAC must be 32 bytes, got %d: %w", len(mac), ErrBadRecording)
	}
	s := &trace.Signed{Payload: payload}
	copy(s.MAC[:], mac)
	rec, err := trace.Verify(s, key)
	if err != nil {
		return nil, err
	}
	return &Recording{
		signed: s, key: append([]byte(nil), key...),
		Workload: rec.Workload, ProductID: rec.ProductID,
	}, nil
}

// Audit re-verifies the recording and checks its structural invariants —
// region-map geometry, event-field discipline, job/IRQ balance, dump
// containment — without touching a GPU. The seal authenticates the
// recorder, not the recording: a key-holding but buggy or compromised
// recorder can seal hostile structure, which is exactly what Audit rejects.
// Replay sessions run the same audit; Audit lets tools (grtreplay -audit)
// and ingestion pipelines reject early with ErrBadRecording.
func (r *Recording) Audit() error {
	rec, err := trace.Verify(r.signed, r.key)
	if err != nil {
		return err
	}
	return rec.Audit()
}

// Client is a simulated mobile device: a GPU of some SKU behind a TrustZone
// controller, with a virtual clock and a device-unique sealing key (as fused
// at manufacture).
type Client struct {
	ID  string
	SKU *SKU

	clock  *timesim.Clock
	sealer *tee.Sealer

	// mu guards seed: concurrent Record calls each need a distinct
	// deterministic seed for their session's GPU nondeterminism.
	mu   sync.Mutex
	seed uint64
}

// nextSeed advances and returns the per-session seed.
func (c *Client) nextSeed() uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.seed += 0x9E3779B97F4A7C15
	return c.seed
}

// currentSeed reads the seed without advancing it.
func (c *Client) currentSeed() uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.seed
}

// NewClient creates a simulated client device.
func NewClient(id string, sku *SKU) *Client {
	if sku == nil {
		panic("gpurelay: nil SKU")
	}
	deviceKey := make([]byte, 32)
	if _, err := rand.Read(deviceKey); err != nil {
		panic(err)
	}
	sealer, err := tee.NewSealer(deviceKey)
	if err != nil {
		panic(err)
	}
	return &Client{ID: id, SKU: sku, clock: timesim.NewClock(), seed: 1, sealer: sealer}
}

// SealRecording encrypts a recording (and its session key) under this
// device's unique key for storage on the untrusted filesystem. Only this
// device can unseal it — the TEE secure-storage pattern for persisting
// recordings across reboots.
func (c *Client) SealRecording(rec *Recording) ([]byte, error) {
	if rec == nil || rec.signed == nil {
		return nil, fmt.Errorf("gpurelay: nil recording")
	}
	var buf []byte
	appendChunk := func(b []byte) {
		var n [4]byte
		n[0], n[1], n[2], n[3] = byte(len(b)), byte(len(b)>>8), byte(len(b)>>16), byte(len(b)>>24)
		buf = append(buf, n[:]...)
		buf = append(buf, b...)
	}
	appendChunk(rec.signed.Payload)
	appendChunk(rec.signed.MAC[:])
	appendChunk(rec.key)
	return c.sealer.Seal(rec.Workload, buf)
}

// UnsealRecording decrypts a sealed blob produced by SealRecording on this
// device. workload must match the label it was sealed under.
func (c *Client) UnsealRecording(workload string, blob []byte) (*Recording, error) {
	buf, err := c.sealer.Unseal(workload, blob)
	if err != nil {
		return nil, err
	}
	next := func() ([]byte, error) {
		if len(buf) < 4 {
			return nil, fmt.Errorf("gpurelay: sealed blob truncated")
		}
		n := int(buf[0]) | int(buf[1])<<8 | int(buf[2])<<16 | int(buf[3])<<24
		if len(buf) < 4+n {
			return nil, fmt.Errorf("gpurelay: sealed blob truncated")
		}
		chunk := buf[4 : 4+n]
		buf = buf[4+n:]
		return chunk, nil
	}
	payload, err := next()
	if err != nil {
		return nil, err
	}
	mac, err := next()
	if err != nil {
		return nil, err
	}
	key, err := next()
	if err != nil {
		return nil, err
	}
	return RecordingFromBundle(payload, mac, key)
}

// Clock exposes the device's virtual clock (useful for measuring flows that
// span record and replay).
func (c *Client) Clock() *timesim.Clock { return c.clock }

// compatible returns the devicetree compatible string for the client's GPU.
func (c *Client) compatible() (string, error) {
	for compat, sku := range mali.Catalog {
		if sku == c.SKU {
			return compat, nil
		}
	}
	return "", fmt.Errorf("gpurelay: SKU %s not in catalog", c.SKU)
}

// Service is the cloud recording service: a bounded pool of single-tenant
// recording VMs behind a FIFO admission queue, plus a store of speculation
// histories shared among sessions recording the same workload on the same
// GPU SKU. It is safe for concurrent use — multiple clients (and multiple
// sessions of one client, capacity permitting) can record in parallel.
type Service struct {
	svc   *cloud.Service
	image *cloud.Image
	// Exactly one of mgr and sharded is set: a single admission pool, or
	// ServiceConfig.Shards partitions under consistent hashing on the
	// recording cache key. Admission routes through acquireVM/releaseVM.
	mgr       *cloud.SessionManager
	sharded   *cloud.ShardedService
	histories *shim.HistoryStore
	// cache is the content-addressed recording store behind the cache-first
	// admission path (RecordCached): sealed recordings keyed by
	// (SKU, stack, workload, input shape), interlocked with the quarantine.
	cache *castore.Store
	// coalescer deduplicates concurrent record attempts per cache key —
	// one leader records, followers share the published entry.
	coalescer *castore.Coalescer
	// cacheSecret derives the deterministic session keys and client seeds
	// cached recordings are sealed with, so every client admitted under one
	// cache key receives byte-identical artifacts.
	cacheSecret []byte
	// fleet aggregates telemetry across every session the service hosts:
	// admission outcomes and (wall-clock) queue waits from the session
	// manager, history-store hit rates, and — for sessions recorded with a
	// Scope — every per-session counter and histogram, double-written by
	// the scope.
	fleet *obs.Registry
	// quarantine retains the recordings IngestRecording rejected, with
	// fingerprints and stable reasons, and feeds the grt_ingest_* metrics.
	quarantine *audit.Quarantine
	// flight journals structured events (admissions, sync phases,
	// speculation commits, faults, resumes, ingest rejections) across every
	// session the service hosts, stamped with each session's virtual time.
	// Nil when disabled; every write is nil-safe and free.
	flight *obs.FlightRecorder
	// bundles retains the sealed diagnostic bundles captured on failure
	// paths; bundleKey seals them (drawn at service construction, the way a
	// real service would hold an evidence-signing key).
	bundles   *audit.BundleLog
	bundleKey []byte
	// health rolls the fleet registry into windowed SLO health reports.
	health *cloud.HealthTracker
}

// ServiceConfig tunes a Service. The zero value gives a pool of 16
// concurrent recording VMs, an admission queue of 64, one session per
// client, and the paper's speculation confidence threshold k=3.
type ServiceConfig struct {
	// Capacity bounds concurrently live recording VMs (0 → 16).
	Capacity int
	// QueueLimit bounds admissions waiting for a VM slot once the pool
	// is full; past it Record fails fast with ErrCapacity (0 →
	// 4×Capacity, negative → no queueing).
	QueueLimit int
	// PerClientSessions bounds concurrent recording sessions per client
	// ID (0 → 1).
	PerClientSessions int
	// HistoryK is the speculation confidence threshold for the shared
	// history store (0 → 3).
	HistoryK int
	// FlightCapacity bounds the service's flight recorder (0 → 4096 events;
	// negative → flight recording and diagnostic-bundle capture disabled).
	// Disabling changes nothing observable about recordings — the flight
	// recorder is strictly a witness.
	FlightCapacity int
	// Health tunes the fleet health rollup thresholds (zero value →
	// defaults; see HealthThresholds).
	Health HealthThresholds
	// Shards partitions admission across N SessionManager pools under
	// consistent hashing on the recording cache key (0 or 1 → one pool).
	// Each partition gets its own Capacity/QueueLimit budget; a saturated
	// partition rejects with a *SheddingError instead of plain ErrCapacity.
	Shards int
	// CacheEntries and CacheBytes bound the recording store's memory tier
	// (0 → castore defaults: 256 entries, 256 MiB).
	CacheEntries int
	CacheBytes   int64
	// CacheDir, when non-empty, enables the store's on-disk tier: entries
	// persist there and memory misses fall through to a re-verified load.
	CacheDir string
	// CacheSecret derives the deterministic per-cache-key session keys and
	// client seeds cached recordings are sealed with. Nil draws a random
	// secret at construction (caches are then byte-stable within one
	// service lifetime; fix the secret to make them stable across services).
	CacheSecret []byte
}

// NewService creates a cloud service hosting the default Bifrost GPU-stack
// image, with default capacity and admission limits.
func NewService() *Service {
	return NewServiceWith(ServiceConfig{})
}

// NewServiceWith creates a cloud service with explicit capacity, queueing,
// and history configuration.
func NewServiceWith(cfg ServiceConfig) *Service {
	img := cloud.DefaultImage()
	sessionCfg := cloud.SessionConfig{
		Capacity:       cfg.Capacity,
		QueueLimit:     cfg.QueueLimit,
		PerClientLimit: cfg.PerClientSessions,
	}
	k := cfg.HistoryK
	if k <= 0 {
		k = 3
	}
	fleet := obs.NewRegistry()
	histories := shim.NewHistoryStore(k)
	histories.Instrument(fleet)
	s := &Service{
		image: img, histories: histories, fleet: fleet,
		quarantine: audit.New(0),
		health:     cloud.NewHealthTracker(cfg.Health),
		coalescer:  castore.NewCoalescer(),
	}
	if cfg.Shards > 1 {
		s.sharded = cloud.NewShardedService(img, cloud.ShardedConfig{
			Shards: cfg.Shards,
			Shard:  sessionCfg,
		})
		s.sharded.Instrument(fleet)
	} else {
		s.svc = cloud.NewService(img)
		s.mgr = cloud.NewSessionManager(s.svc, sessionCfg)
		s.mgr.Instrument(fleet)
	}
	cache, err := castore.New(castore.Config{
		MaxEntries: cfg.CacheEntries,
		MaxBytes:   cfg.CacheBytes,
		Dir:        cfg.CacheDir,
	})
	if err != nil {
		// A broken cache directory must not take the record path down:
		// fall back to a memory-only store.
		cache, _ = castore.New(castore.Config{
			MaxEntries: cfg.CacheEntries,
			MaxBytes:   cfg.CacheBytes,
		})
	}
	cache.SetQuarantine(s.quarantine)
	cache.Instrument(fleet)
	s.cache = cache
	s.cacheSecret = append([]byte(nil), cfg.CacheSecret...)
	if len(s.cacheSecret) == 0 {
		s.cacheSecret = make([]byte, 32)
		if _, err := rand.Read(s.cacheSecret); err != nil {
			panic(err)
		}
	}
	if cfg.FlightCapacity >= 0 {
		s.flight = obs.NewFlightRecorder(cfg.FlightCapacity)
		s.bundles = audit.NewBundleLog(0)
		s.bundleKey = make([]byte, 32)
		if _, err := rand.Read(s.bundleKey); err != nil {
			// No entropy means no evidence seal; run without bundles rather
			// than sealing under a predictable key.
			s.bundles, s.bundleKey = nil, nil
		}
		if s.sharded != nil {
			s.sharded.InstrumentFlight(s.flight)
		} else {
			s.mgr.InstrumentFlight(s.flight)
		}
	}
	return s
}

// NumShards reports the admission partition count (1 for an unsharded
// service).
func (s *Service) NumShards() int {
	if s.sharded != nil {
		return s.sharded.NumShards()
	}
	return 1
}

// cacheKeyFor derives the cache identity of recording model on this
// service's stack for the client's SKU — the shared derivation that makes
// cache hits (and shard routing) line up across every admission path.
func (s *Service) cacheKeyFor(sku *SKU, model *Model) castore.Key {
	return castore.KeyForModel(sku.Name, s.image.Stack, model)
}

// acquireVM routes one admission: to the key's shard when sharded, else the
// single pool. The cache-key hash decides the shard, so a workload's
// singleflight leader and followers always land on one partition.
func (s *Service) acquireVM(ctx context.Context, key [32]byte, clientID, compat string, nonce []byte) (*cloud.VM, error) {
	if s.sharded != nil {
		return s.sharded.Acquire(ctx, key, clientID, compat, nonce)
	}
	return s.mgr.Acquire(ctx, clientID, s.image.Name, compat, nonce)
}

// maxShedRetries bounds how many times an admission honors a shedding
// partition's retry-after hint before surfacing the rejection.
const maxShedRetries = 4

// acquireVMShedAware is acquireVM honoring a sharded partition's shed
// rejection: a *SheddingError carries the partition's retry-after hint, so
// instead of failing the session the client waits out the hint (plus a
// small deterministic jitter so a herd of shed clients does not re-arrive
// in lockstep) on its virtual clock and re-admits, up to maxShedRetries
// times. Plain ErrCapacity (unsharded saturation) and every other error
// surface immediately, unchanged.
func (s *Service) acquireVMShedAware(ctx context.Context, clock *timesim.Clock,
	scope *obs.Scope, jitterSeed uint64, key [32]byte, clientID, compat string,
	nonce []byte) (*cloud.VM, error) {
	vm, err := s.acquireVM(ctx, key, clientID, compat, nonce)
	jrng := jitterSeed ^ 0xA24BAED4963EE407
	if jrng == 0 {
		jrng = 1
	}
	for try := 1; err != nil && try <= maxShedRetries; try++ {
		var shed *cloud.SheddingError
		if !errors.As(err, &shed) || shed.RetryAfter <= 0 {
			break
		}
		jrng ^= jrng << 13
		jrng ^= jrng >> 7
		jrng ^= jrng << 17
		d := shed.RetryAfter + time.Duration(jrng%uint64(shed.RetryAfter/8+1))
		clock.Advance(d)
		if scope != nil {
			scope.Count(obs.MShedRetries, 1)
		} else {
			s.fleet.Add(obs.MShedRetries, 1)
		}
		scope.Annotate("session.shed-retry", "session",
			obs.A("try", int64(try)), obs.A("wait_ns", int64(d)),
			obs.A("shard", int64(shed.Shard)))
		s.flight.Emit(clock.Now(), clientID, obs.FKShardShed, "retry",
			obs.A("try", int64(try)), obs.A("wait_ns", int64(d)),
			obs.A("shard", int64(shed.Shard)))
		vm, err = s.acquireVM(ctx, key, clientID, compat, nonce)
	}
	return vm, err
}

func (s *Service) releaseVM(vm *cloud.VM) {
	if s.sharded != nil {
		s.sharded.Release(vm)
		return
	}
	s.mgr.Release(vm)
}

func (s *Service) crashVM(vm *cloud.VM) {
	if s.sharded != nil {
		s.sharded.Crash(vm)
		return
	}
	s.mgr.Crash(vm)
}

// DeviceInfo is a point-in-time snapshot of one GPU device's health books:
// state (healthy/degraded/dead), throttle time, ECC counts, fall-offs, and
// sessions migrated off it.
type DeviceInfo = cloud.DeviceInfo

// Devices snapshots the health books of the fleet's GPU inventory, in
// attachment order (shard order first under a sharded service). Devices a
// health fault degraded or killed stay listed — the fleet's scar tissue is
// the operator's signal.
func (s *Service) Devices() []DeviceInfo {
	if s.sharded != nil {
		return s.sharded.Devices()
	}
	return s.mgr.Devices()
}

// Metrics returns a snapshot of the service's fleet-wide metrics registry.
func (s *Service) Metrics() *MetricsSnapshot { return s.fleet.Snapshot() }

// FleetRegistry exposes the service's live fleet registry, so callers can
// aggregate their own scopes into it (ScopeOptions.Fleet) — e.g. a replay
// scope whose counters should land on the same /metrics surface as the
// service's ingest and admission counters.
func (s *Service) FleetRegistry() *MetricsRegistry { return s.fleet }

// WriteMetrics writes the fleet metrics in Prometheus text exposition
// format (what a /metrics endpoint would serve).
func (s *Service) WriteMetrics(w io.Writer) error { return s.fleet.WritePrometheus(w) }

// QuarantineEntry describes one recording rejected by IngestRecording: a
// payload fingerprint (truncated SHA-256), a stable machine-readable reason
// token, and the rejection detail.
type QuarantineEntry = audit.Entry

// IngestRecording is the service's front door for recordings arriving from
// untrusted storage or transit. It runs the full trust-boundary pipeline —
// MAC verification, resource-bounded parse, structural audit — and only
// then admits the recording. Rejected payloads are quarantined (fingerprint
// + reason, retrievable via Quarantined) and counted in the fleet metrics
// (grt_ingest_recordings_total, grt_ingest_rejects_total), so rejection
// pressure is visible on the service's /metrics surface.
func (s *Service) IngestRecording(payload, mac, key []byte) (*Recording, error) {
	rec, err := s.ingest(payload, mac, key)
	if err != nil {
		e := s.quarantine.Add(payload, err)
		s.fleet.Add(obs.MIngestRecordings, 1, obs.L("outcome", "rejected"))
		s.fleet.Add(obs.MIngestRejects, 1, obs.L("reason", e.Reason))
		s.fleet.GaugeSet(obs.MIngestQuarantine, int64(len(s.quarantine.Entries())))
		// Ingestion happens outside any session clock; the rejection lands
		// on the flight timeline at t=0 and seals a diagnostic bundle.
		s.flight.Emit(0, "", obs.FKIngestReject, e.Reason, obs.A("bytes", int64(len(payload))))
		s.captureBundle("", err, 0, &e)
		return nil, err
	}
	s.fleet.Add(obs.MIngestRecordings, 1, obs.L("outcome", "accepted"))
	return rec, nil
}

func (s *Service) ingest(payload, mac, key []byte) (*Recording, error) {
	if len(mac) != 32 {
		return nil, fmt.Errorf("gpurelay: MAC must be 32 bytes, got %d: %w", len(mac), ErrBadRecording)
	}
	signed := &trace.Signed{Payload: payload}
	copy(signed.MAC[:], mac)
	rec, err := trace.Verify(signed, key)
	if err != nil {
		return nil, err
	}
	if err := rec.Audit(); err != nil {
		return nil, fmt.Errorf("gpurelay: %w", err)
	}
	return &Recording{
		signed: signed, key: append([]byte(nil), key...),
		Workload: rec.Workload, ProductID: rec.ProductID,
	}, nil
}

// Quarantined returns the retained rejection entries, oldest first.
func (s *Service) Quarantined() []QuarantineEntry { return s.quarantine.Entries() }

// captureBundle seals a diagnostic bundle from the observability state at a
// failure: the flight-recorder tail, a fleet metrics snapshot, and the
// quarantine entry when the failure crossed the ingestion boundary. A no-op
// when the service runs with flight recording disabled.
func (s *Service) captureBundle(session string, err error, vt time.Duration, q *audit.Entry) {
	if s.bundles == nil {
		return
	}
	b := audit.CaptureBundle(session, err, vt, s.flight.Tail(bundleFlightTail), s.fleet.Snapshot(), q)
	signed, serr := b.Seal(s.bundleKey)
	if serr != nil {
		return
	}
	s.bundles.Add(audit.SealedBundle{Bundle: b, Signed: signed})
	s.flight.Emit(vt, session, obs.FKBundle, b.Reason)
}

// bundleFlightTail is how many trailing flight events a diagnostic bundle
// packages: enough to see the failing session's recent phases without
// shipping the whole journal.
const bundleFlightTail = 64

// FlightEvents returns the service's retained flight-recorder journal,
// oldest first (nil when flight recording is disabled).
func (s *Service) FlightEvents() []FlightEvent { return s.flight.Events() }

// WriteFlight writes the flight journal as JSON Lines — the format grtdiag
// flight reads back.
func (s *Service) WriteFlight(w io.Writer) error { return s.flight.WriteJSONL(w) }

// DiagBundles returns the sealed diagnostic bundles captured so far, oldest
// first.
func (s *Service) DiagBundles() []SealedDiagBundle { return s.bundles.Entries() }

// LastDiagBundle returns the most recent diagnostic bundle, if any was
// captured.
func (s *Service) LastDiagBundle() (SealedDiagBundle, bool) { return s.bundles.Last() }

// BundleKey exposes the service's evidence-sealing key so a sealed bundle
// can be exported with EncodeDiagBundle (the demo-CLI convention; a real
// deployment keeps it in secure storage).
func (s *Service) BundleKey() []byte { return append([]byte(nil), s.bundleKey...) }

// Health rolls the window since the previous Health call into a fleet health
// report and starts a new window. The first call reports since service
// construction.
func (s *Service) Health() *HealthReport { return s.health.Observe(s.fleet.Snapshot()) }

// ActiveVMs reports the number of live recording VMs (summed across shards
// on a sharded service).
func (s *Service) ActiveVMs() int {
	if s.sharded != nil {
		return s.sharded.ActiveVMs()
	}
	return s.mgr.ActiveVMs()
}

// QueuedSessions reports the number of admissions waiting for a VM slot
// (summed across shards on a sharded service).
func (s *Service) QueuedSessions() int {
	if s.sharded != nil {
		return s.sharded.Queued()
	}
	return s.mgr.Queued()
}

// CacheStats reports the recording store's memory tier: resident entries,
// resident payload bytes, and the number of distinct cache keys ever
// admitted (the record-amplification denominator).
func (s *Service) CacheStats() (entries int, bytes int64, keys int) {
	return s.cache.Len(), s.cache.Bytes(), s.cache.KeysSeen()
}

// SharedHistory returns the service-owned speculation history that record
// sessions for the given SKU and workload share (created empty on first
// use). RecordOptions.History overrides it per call — the knob the §7.3
// history-ablation experiments use.
func (s *Service) SharedHistory(sku *SKU, model *Model) *SpeculationHistory {
	return s.histories.Get(shim.HistoryKey{SKU: sku.Name, Stack: s.image.Stack, Workload: model.Name})
}

// SpecHistorySnapshot carries validated speculation-commit histories
// between services: the fleet-shared warm start (DESIGN.md §14). Opaque —
// produce one with ExportSpecHistory, consume it with ImportSpecHistory.
type SpecHistorySnapshot struct {
	snap map[shim.HistoryKey]map[string]shim.Outcome
}

// Keys reports how many (SKU, stack, workload) histories the snapshot
// carries.
func (s *SpecHistorySnapshot) Keys() int {
	if s == nil {
		return 0
	}
	return len(s.snap)
}

// ExportSpecHistory snapshots every speculation history this service has
// validated to prediction confidence: only signatures whose recent window
// already satisfies the k-of-k prediction rule are exported, so a peer
// imports exactly the outcomes this fleet member would itself speculate on.
// The snapshot is keyed like the recording cache key (SKU, stack, workload)
// and is safe to hand to ImportSpecHistory on any service running the same
// stack.
func (s *Service) ExportSpecHistory() *SpecHistorySnapshot {
	return &SpecHistorySnapshot{snap: s.histories.Export()}
}

// ImportSpecHistory seeds this service's speculation histories from a
// peer's export, so a cold session's first commits already predict. Only
// signatures absent locally are seeded — locally observed outcomes outrank
// imported ones — which also makes imports from several peers
// order-independent. Returns the number of signatures seeded.
func (s *Service) ImportSpecHistory(sn *SpecHistorySnapshot) int {
	if sn == nil || len(sn.snap) == 0 {
		return 0
	}
	n := s.histories.Import(sn.snap)
	s.flight.Emit(0, "", obs.FKSpecWarm, "import",
		obs.A("keys", int64(len(sn.snap))), obs.A("seeded", int64(n)))
	return n
}

// RecordOptions tunes a record run. The zero value records with all
// optimizations (OursMDS) over WiFi.
type RecordOptions struct {
	Variant Variant
	Network Network
	// History overrides the speculation history for this run (the §7.3
	// ablation experiments thread one explicitly). Nil uses the
	// service's shared store, keyed by (SKU, stack, workload), so
	// concurrent clients recording the same model on the same hardware
	// warm each other up automatically.
	History *SpeculationHistory
	// InjectMispredictionAt arms the §7.3 fault-injection experiment: the
	// nth speculated commit is treated as mispredicted, forcing a
	// detection + rollback cycle. Zero disables (use a positive index).
	InjectMispredictionAt int
	// Obs, when non-nil, collects the session's telemetry: phase spans on
	// the session's virtual clock and the counters behind the paper's
	// tables. Unless the scope already carries a fleet registry, the
	// service's fleet registry is attached so session counters aggregate
	// into the service-wide view. Nil records without instrumentation —
	// the recording and its stats are bit-identical either way.
	Obs *Scope
}

// SpeculationHistory is the cross-workload commit history (§4.2).
type SpeculationHistory = shim.History

// NewSpeculationHistory creates a history with the paper's confidence
// threshold k=3.
func NewSpeculationHistory() *SpeculationHistory { return shim.NewHistory(3) }

// Record performs the full GR-T online-recording workflow: attest and launch
// a dedicated cloud VM for this client's GPU, dry run the workload on the
// cloud GPU stack against this device's GPU, and download the signed
// recording.
func (c *Client) Record(svc *Service, model *Model, opts RecordOptions) (*Recording, RecordStats, error) {
	return c.RecordContext(context.Background(), svc, model, opts)
}

// RecordContext is Record with admission control and cancellation: when the
// service's VM pool is saturated the call queues (FIFO) for a slot, and a
// context deadline or cancel aborts the session — whether still queued or
// already mid-recording — releasing its VM and returning an error that
// wraps the context's cause. Saturation past the admission queue fails fast
// with ErrCapacity.
func (c *Client) RecordContext(ctx context.Context, svc *Service, model *Model, opts RecordOptions) (*Recording, RecordStats, error) {
	if opts.Network.Name == "" {
		opts.Network = WiFi
	}
	compat, err := c.compatible()
	if err != nil {
		return nil, RecordStats{}, err
	}
	nonce := make([]byte, 16)
	if _, err := rand.Read(nonce); err != nil {
		return nil, RecordStats{}, err
	}
	opts.Obs.AttachFleet(svc.fleet)
	opts.Obs.AttachFlight(svc.flight)
	vm, err := svc.acquireVM(ctx, svc.cacheKeyFor(c.SKU, model).Hash(), c.ID, compat, nonce)
	if err != nil {
		return nil, RecordStats{}, fmt.Errorf("gpurelay: launching recording VM: %w", err)
	}
	defer svc.releaseVM(vm)
	// Admission and attestation happen before the session's virtual clock
	// exists, so they land on the timeline as instants at t=0.
	opts.Obs.Annotate("session.admitted", "session")
	// Attestation: the client accepts only the measurement it expects for
	// this image and GPU.
	want, err := cloud.ExpectedMeasurement(svc.image, compat)
	if err != nil {
		return nil, RecordStats{}, err
	}
	if vm.Measurement != want {
		return nil, RecordStats{}, fmt.Errorf("gpurelay: VM measurement mismatch for image %q on %q: %w",
			svc.image.Name, compat, ErrAttestation)
	}
	opts.Obs.Annotate("session.attested", "session")
	key := append([]byte(nil), vm.SessionKey...)

	hist := opts.History
	if hist == nil {
		hist = svc.SharedHistory(c.SKU, model)
	}
	inject := -1
	if opts.InjectMispredictionAt > 0 {
		inject = opts.InjectMispredictionAt
	}
	res, err := record.RunContext(ctx, record.Config{
		Variant: opts.Variant, Model: model, SKU: c.SKU, Network: opts.Network,
		SessionKey: key, History: hist,
		ClientSeed: c.nextSeed(), InjectMispredictionAt: inject,
		Obs: opts.Obs,
	})
	if err != nil {
		return nil, RecordStats{}, err
	}
	c.clock.Advance(res.Stats.RecordingDelay)
	return &Recording{
		signed: res.Signed, key: key,
		Workload: res.Recording.Workload, ProductID: res.Recording.ProductID,
	}, res.Stats, nil
}

// CacheOutcome reports how a cache-first record request was served.
type CacheOutcome string

const (
	// CacheHit: served straight from the recording store — zero VM time,
	// no admission-queue slot consumed.
	CacheHit CacheOutcome = "hit"
	// CacheRecorded: this request led the record for its cache key and
	// published the result.
	CacheRecorded CacheOutcome = "recorded"
	// CacheCoalesced: another request was already recording this cache
	// key; this one waited and shares the published artifact.
	CacheCoalesced CacheOutcome = "coalesced"
)

// RecordCached is the cache-first record workflow of a fleet-scale service:
// derive the cache key (SKU, stack, workload, input shape) *before*
// admission, serve a store hit with zero VM time, and coalesce concurrent
// misses so exactly one session records per key. See RecordCachedContext.
func (c *Client) RecordCached(svc *Service, model *Model, opts RecordOptions) (*Recording, CacheOutcome, RecordStats, error) {
	return c.RecordCachedContext(context.Background(), svc, model, opts)
}

// RecordCachedContext is RecordCached with cancellation. A hit returns
// immediately with zero RecordStats (nothing was recorded — that is the
// point). A miss runs singleflight: the leader admits a VM (through the
// key's shard on a sharded service), records with a cache-derived session
// key so the artifact is client-agnostic, publishes to the store, and every
// coalesced follower receives the same sealed bytes. A follower whose
// leader's context dies is promoted to lead the retry. Recordings this path
// returns verify and replay exactly like RecordContext's, but two clients
// requesting the same key receive byte-identical bundles.
func (c *Client) RecordCachedContext(ctx context.Context, svc *Service, model *Model, opts RecordOptions) (*Recording, CacheOutcome, RecordStats, error) {
	ck := svc.cacheKeyFor(c.SKU, model)
	if e, ok := svc.cache.Get(ck); ok {
		svc.flight.Emit(0, c.ID, obs.FKCacheHit, ck.Workload)
		return recordingFromEntry(e), CacheHit, RecordStats{}, nil
	}
	svc.flight.Emit(0, c.ID, obs.FKCacheMiss, ck.Workload)
	var stats RecordStats
	e, led, err := svc.coalescer.Do(ctx, ck.Hash(), func(ctx context.Context) (*castore.Entry, error) {
		// Leadership won after a race: the previous leader may have just
		// published. Serve the store before spending a VM.
		if e, ok := svc.cache.Get(ck); ok {
			return e, nil
		}
		e, res, err := svc.recordForCache(ctx, c, ck, model, opts)
		if err != nil {
			return nil, err
		}
		stats = res.Stats
		return e, nil
	})
	if err != nil {
		return nil, "", RecordStats{}, err
	}
	if !led {
		svc.fleet.Add(obs.MCacheCoalesced, 1)
		svc.flight.Emit(0, c.ID, obs.FKCacheCoalesce, ck.Workload)
		return recordingFromEntry(e), CacheCoalesced, RecordStats{}, nil
	}
	return recordingFromEntry(e), CacheRecorded, stats, nil
}

// recordForCache runs the leader's record session for one cache key: admit
// (by key, so sharding and coalescing agree), attest, record under the
// cache-derived session key and client seed, publish to the store. A store
// that refuses publication (e.g. the fingerprint got quarantined while the
// session ran) does not fail the request — the fresh recording still serves
// this leader and its followers; it just is not cached.
func (s *Service) recordForCache(ctx context.Context, c *Client, ck castore.Key, model *Model, opts RecordOptions) (*castore.Entry, *record.Result, error) {
	if opts.Network.Name == "" {
		opts.Network = WiFi
	}
	compat, err := c.compatible()
	if err != nil {
		return nil, nil, err
	}
	nonce := make([]byte, 16)
	if _, err := rand.Read(nonce); err != nil {
		return nil, nil, err
	}
	opts.Obs.AttachFleet(s.fleet)
	opts.Obs.AttachFlight(s.flight)
	kh := ck.Hash()
	vm, err := s.acquireVMShedAware(ctx, c.clock, opts.Obs,
		binary.LittleEndian.Uint64(kh[:8]), kh, c.ID, compat, nonce)
	if err != nil {
		return nil, nil, fmt.Errorf("gpurelay: launching recording VM: %w", err)
	}
	defer s.releaseVM(vm)
	want, err := cloud.ExpectedMeasurement(s.image, compat)
	if err != nil {
		return nil, nil, err
	}
	if vm.Measurement != want {
		return nil, nil, fmt.Errorf("gpurelay: VM measurement mismatch for image %q on %q: %w",
			s.image.Name, compat, ErrAttestation)
	}

	hist := opts.History
	if hist == nil {
		hist = s.SharedHistory(c.SKU, model)
	}
	res, err := record.RunContext(ctx, record.Config{
		Variant: opts.Variant, Model: model, SKU: c.SKU, Network: opts.Network,
		// Cache-derived key and seed, NOT the VM's attestation key or the
		// client's seed: the artifact must not depend on who led.
		SessionKey: s.cacheSessionKey(kh),
		ClientSeed: s.cacheClientSeed(kh),
		History:    hist, InjectMispredictionAt: -1,
		Obs: opts.Obs,
	})
	if err != nil {
		return nil, nil, err
	}
	c.clock.Advance(res.Stats.RecordingDelay)
	e := &castore.Entry{
		Key:        ck,
		Payload:    res.Signed.Payload,
		MAC:        res.Signed.MAC,
		SessionKey: s.cacheSessionKey(kh),
		ProductID:  res.Recording.ProductID,
	}
	if perr := s.cache.Put(e); perr != nil {
		// Served, not cached. The store already counted the reject.
		return e, res, nil
	}
	return e, res, nil
}

// cacheSessionKey derives the session key cached recordings for one cache
// key are sealed with: HMAC-SHA256(cacheSecret, "session-key" || keyhash).
func (s *Service) cacheSessionKey(kh [32]byte) []byte {
	m := hmac.New(sha256.New, s.cacheSecret)
	m.Write([]byte("grt-cache-session-key/1"))
	m.Write(kh[:])
	return m.Sum(nil)
}

// cacheClientSeed derives the deterministic client seed for one cache key,
// so the recorded GPU nondeterminism stream is a function of the key alone.
func (s *Service) cacheClientSeed(kh [32]byte) uint64 {
	m := hmac.New(sha256.New, s.cacheSecret)
	m.Write([]byte("grt-cache-client-seed/1"))
	m.Write(kh[:])
	return binary.LittleEndian.Uint64(m.Sum(nil)[:8])
}

// recordingFromEntry wraps a store entry in the client-facing Recording.
func recordingFromEntry(e *castore.Entry) *Recording {
	return &Recording{
		signed: e.Signed(), key: append([]byte(nil), e.SessionKey...),
		Workload: e.Key.Workload, ProductID: e.ProductID,
	}
}

// QuarantineRecording poisons a recording after the fact: its fingerprint
// enters the audit quarantine and every cache entry carrying it is purged
// from both store tiers, so subsequent cache-first requests miss and
// re-record rather than serve the poison. Returns the quarantine entry.
func (s *Service) QuarantineRecording(rec *Recording, cause error) QuarantineEntry {
	e := s.quarantine.Add(rec.signed.Payload, cause)
	s.cache.Purge(e.Fingerprint)
	s.fleet.GaugeSet(obs.MIngestQuarantine, int64(len(s.quarantine.Entries())))
	s.flight.Emit(0, "", obs.FKIngestReject, e.Reason, obs.A("bytes", int64(len(rec.signed.Payload))))
	return e
}

// SegmentedRecording is a set of per-layer recordings of one workload
// (Figure 2 of the paper): the developer-chosen granularity trading
// composability against efficiency. Segments replay back-to-back on one
// device.
type SegmentedRecording struct {
	segs []*trace.Signed
	key  []byte
	// Workload and ProductID echo the recording header.
	Workload  string
	ProductID uint32
}

// Layers returns the number of segments.
func (s *SegmentedRecording) Layers() int { return len(s.segs) }

// RecordSegmented records a workload like Record but splits the recording at
// the model's layer boundaries, producing one independently signed recording
// per layer.
func (c *Client) RecordSegmented(svc *Service, model *Model, opts RecordOptions) (*SegmentedRecording, RecordStats, error) {
	return c.RecordSegmentedContext(context.Background(), svc, model, opts)
}

// RecordSegmentedContext is RecordSegmented with the same admission control
// and cancellation semantics as RecordContext.
func (c *Client) RecordSegmentedContext(ctx context.Context, svc *Service, model *Model, opts RecordOptions) (*SegmentedRecording, RecordStats, error) {
	if opts.Network.Name == "" {
		opts.Network = WiFi
	}
	compat, err := c.compatible()
	if err != nil {
		return nil, RecordStats{}, err
	}
	nonce := make([]byte, 16)
	if _, err := rand.Read(nonce); err != nil {
		return nil, RecordStats{}, err
	}
	vm, err := svc.acquireVM(ctx, svc.cacheKeyFor(c.SKU, model).Hash(), c.ID, compat, nonce)
	if err != nil {
		return nil, RecordStats{}, fmt.Errorf("gpurelay: launching recording VM: %w", err)
	}
	defer svc.releaseVM(vm)
	key := append([]byte(nil), vm.SessionKey...)

	hist := opts.History
	if hist == nil {
		hist = svc.SharedHistory(c.SKU, model)
	}
	opts.Obs.AttachFleet(svc.fleet)
	opts.Obs.AttachFlight(svc.flight)
	res, err := record.RunContext(ctx, record.Config{
		Variant: opts.Variant, Model: model, SKU: c.SKU, Network: opts.Network,
		SessionKey: key, History: hist,
		ClientSeed: c.nextSeed(), InjectMispredictionAt: -1,
		Obs: opts.Obs,
	})
	if err != nil {
		return nil, RecordStats{}, err
	}
	c.clock.Advance(res.Stats.RecordingDelay)
	signeds, _, err := res.Segments(model.LayerBoundaries())
	if err != nil {
		return nil, RecordStats{}, err
	}
	return &SegmentedRecording{
		segs: signeds, key: key,
		Workload: res.Recording.Workload, ProductID: res.Recording.ProductID,
	}, res.Stats, nil
}

// NewChainedReplaySession verifies every segment and prepares a replayer
// that runs them back-to-back.
func (c *Client) NewChainedReplaySession(rec *SegmentedRecording) (*ReplaySession, error) {
	if rec == nil || len(rec.segs) == 0 {
		return nil, fmt.Errorf("gpurelay: empty segmented recording")
	}
	first, err := trace.Verify(rec.segs[0], rec.key)
	if err != nil {
		return nil, err
	}
	// Audit before sizing the pool: PoolSize is attacker-chosen until the
	// structural audit (which bounds it) has passed.
	if err := first.Audit(); err != nil {
		return nil, fmt.Errorf("gpurelay: %w", err)
	}
	pool := gpumem.NewPool(first.PoolSize)
	gpu := mali.New(c.SKU, pool, c.clock, c.currentSeed()^0xC0DEC0DE)
	ctrl := tee.NewController(gpu)
	rp, err := replay.NewChained(rec.segs, rec.key, gpu, ctrl, c.clock)
	if err != nil {
		return nil, err
	}
	return &ReplaySession{client: c, rp: rp, gpu: gpu}, nil
}

// ReplayResult reports one replay run.
type ReplayResult = replay.Result

// ReplaySession replays one recording on the client's GPU, inside its TEE.
type ReplaySession struct {
	client *Client
	rp     *replay.Replayer
	gpu    *mali.GPU
}

// NewReplaySession verifies the recording's signature and SKU binding and
// prepares the TEE-side replayer. The device reserves secure memory sized to
// the recording's footprint (§3.1).
func (c *Client) NewReplaySession(rec *Recording) (*ReplaySession, error) {
	return c.NewReplaySessionContext(context.Background(), rec)
}

// NewReplaySessionContext is NewReplaySession honoring a context: session
// setup (verification and secure-memory reservation) is abandoned if ctx
// ends first. Replay itself runs entirely on-device and needs no network,
// so a prepared session never blocks on anything cancellable.
func (c *Client) NewReplaySessionContext(ctx context.Context, rec *Recording) (*ReplaySession, error) {
	if rec == nil || rec.signed == nil {
		return nil, fmt.Errorf("gpurelay: nil recording")
	}
	if err := ctx.Err(); err != nil {
		return nil, fmt.Errorf("gpurelay: replay session setup: %w", err)
	}
	// Peek at the pool size requirement (the payload is verified again by
	// replay.New). Audit before sizing the pool: PoolSize is
	// attacker-chosen until the structural audit (which bounds it) passes.
	peek, err := trace.Verify(rec.signed, rec.key)
	if err != nil {
		return nil, err
	}
	if err := peek.Audit(); err != nil {
		return nil, fmt.Errorf("gpurelay: %w", err)
	}
	if err := ctx.Err(); err != nil {
		return nil, fmt.Errorf("gpurelay: replay session setup: %w", err)
	}
	pool := gpumem.NewPool(peek.PoolSize)
	gpu := mali.New(c.SKU, pool, c.clock, c.currentSeed()^0xBADC0FFEE)
	ctrl := tee.NewController(gpu)
	rp, err := replay.New(rec.signed, rec.key, gpu, ctrl, c.clock)
	if err != nil {
		return nil, err
	}
	return &ReplaySession{client: c, rp: rp, gpu: gpu}, nil
}

// Instrument attaches a telemetry scope to the session: replay runs record
// per-kind event counters, verification counts, and restore spans into it,
// and ReplayResult.Obs carries the snapshot. A nil scope (the default)
// leaves replay uninstrumented.
func (s *ReplaySession) Instrument(scope *Scope) { s.rp.Obs = scope }

// SetInput stages fresh inference input.
func (s *ReplaySession) SetInput(data []float32) error { return s.rp.SetInputF32(data) }

// SetWeights stages model parameters for one weight region. Parameters stay
// inside the TEE; they were never sent to the cloud (§7.1 confidentiality).
func (s *ReplaySession) SetWeights(region string, data []float32) error {
	return s.rp.SetWeightsF32(region, data)
}

// WeightRegion describes one parameter region of a recording.
type WeightRegion struct {
	Name  string
	Elems int // float32 element count
}

// WeightRegions lists the recording's parameter regions in allocation order.
func (s *ReplaySession) WeightRegions() []WeightRegion {
	var out []WeightRegion
	for _, r := range s.rp.Recording().RegionsOfKind(gpumem.KindWeights) {
		out = append(out, WeightRegion{Name: r.Name, Elems: int(r.Size / 4)})
	}
	return out
}

// Run replays the recording on the staged input.
func (s *ReplaySession) Run() (ReplayResult, error) { return s.rp.Run() }

// Output reads the inference result.
func (s *ReplaySession) Output() ([]float32, error) { return s.rp.OutputF32() }

// Elapsed returns total virtual time the client has spent.
func (c *Client) Elapsed() time.Duration { return c.clock.Now() }
